#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/crash_point.h"
#include "common/durable_io.h"
#include "data/generators.h"
#include "shard/manifest.h"
#include "shard/sharded_service.h"

// All suites here are named Manifest* on purpose: the `tsan` CMake test
// preset (and the CI ThreadSanitizer job) selects them with the regex
// ^(Serve|Shard|Migration|Obs|Control|Manifest).

namespace fdrms {
namespace {

/// A per-test store prefix inside the test temp dir, wiped of any leftover
/// constellation files from a previous run of the same binary.
std::string CleanBase(const std::string& name) {
  const std::string base = ::testing::TempDir() + name;
  const std::string prefix = FileBasename(base);
  std::error_code ec;
  std::filesystem::directory_iterator it(::testing::TempDir(), ec);
  const std::filesystem::directory_iterator end;
  while (!ec && it != end) {
    const std::string f = it->path().filename().string();
    if (f.compare(0, prefix.size(), prefix) == 0) {
      std::error_code rm;
      std::filesystem::remove(it->path(), rm);
    }
    it.increment(ec);
  }
  return base;
}

std::vector<std::string> FilesWithPrefix(const std::string& base) {
  const std::string prefix = FileBasename(base);
  std::vector<std::string> out;
  std::error_code ec;
  std::filesystem::directory_iterator it(::testing::TempDir(), ec);
  const std::filesystem::directory_iterator end;
  while (!ec && it != end) {
    const std::string f = it->path().filename().string();
    if (f.compare(0, prefix.size(), prefix) == 0) out.push_back(f);
    it.increment(ec);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void TruncateFile(const std::string& path, std::size_t keep) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream oss;
    oss << in.rdbuf();
    bytes = oss.str();
  }
  ASSERT_GT(bytes.size(), keep);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(keep));
}

void CorruptFile(const std::string& path) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(static_cast<bool>(f)) << path;
  f.seekp(0);
  f.put('#');
}

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps, int count) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < count; ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

/// Live tuple ids of one shard, ascending (valid after Stop).
std::vector<int> LiveIdsOf(const FdRmsService& shard) {
  std::vector<int> ids;
  shard.algorithm().topk().tree().ForEach(
      [&](int id, const Point&) { ids.push_back(id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Conservation + ownership oracle: every live id appears exactly once
/// across the constellation and on the shard the routing epoch assigns it.
void ExpectOwnershipMatchesRouting(const ShardedFdRmsService& service,
                                   std::vector<int>* union_out = nullptr) {
  std::unordered_map<int, int> owner;
  for (int s = 0; s < service.num_shards(); ++s) {
    for (int id : LiveIdsOf(service.shard(s))) {
      auto [it, inserted] = owner.emplace(id, s);
      EXPECT_TRUE(inserted) << "id " << id << " live on shards " << it->second
                            << " and " << s;
      EXPECT_EQ(service.router().Route(id), s)
          << "id " << id << " lives on shard " << s << " but routes to "
          << service.router().Route(id) << " at epoch " << service.epoch();
    }
  }
  if (union_out != nullptr) {
    union_out->clear();
    for (const auto& [id, s] : owner) {
      (void)s;
      union_out->push_back(id);
    }
    std::sort(union_out->begin(), union_out->end());
  }
}

ShardedServiceOptions DurableOptions(const std::string& base, int shards) {
  ShardedServiceOptions sopt;
  sopt.num_shards = shards;
  sopt.shard.algo.r = 6;
  sopt.shard.algo.max_utilities = 128;
  sopt.shard.max_batch = 8;
  sopt.shard.persist_every_batches = 1;
  sopt.shard.persist_path = base;
  sopt.manifest_commit_every_ms = 0;  // deterministic: commit at cutover/Stop
  return sopt;
}

/// Crash points are process-global; every test starts and ends disarmed.
class ManifestCrashGuard : public ::testing::Test {
 protected:
  void SetUp() override { CrashPoints::Reset(); }
  void TearDown() override { CrashPoints::Reset(); }
};

// ---------------------------------------------------------------------------
// Format: encode/decode round-trip and corruption rejection.
// ---------------------------------------------------------------------------

ConstellationManifest SampleManifest() {
  ConstellationManifest m;
  m.generation = 7;
  m.epoch = 3;
  m.shard_count = 2;
  m.routing_checksum = 0xdeadbeefcafe1234ull;
  m.routing_file = "store.routing.e3";
  m.shards.push_back({0, 4, 120, 0x1111222233334444ull, "store.shard0.g4.b120"});
  m.shards.push_back({1, 2, 95, 0x5555666677778888ull, ""});
  return m;
}

TEST(ManifestFormatTest, EncodeDecodeRoundTrip) {
  const ConstellationManifest m = SampleManifest();
  Result<ConstellationManifest> back = DecodeManifest(EncodeManifest(m));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().generation, 7);
  EXPECT_EQ(back.value().epoch, 3);
  EXPECT_EQ(back.value().shard_count, 2);
  EXPECT_EQ(back.value().routing_checksum, m.routing_checksum);
  EXPECT_EQ(back.value().routing_file, m.routing_file);
  ASSERT_EQ(back.value().shards.size(), 2u);
  EXPECT_EQ(back.value().shards[0].file, "store.shard0.g4.b120");
  EXPECT_EQ(back.value().shards[0].gen, 4);
  EXPECT_EQ(back.value().shards[0].batches, 120);
  EXPECT_EQ(back.value().shards[0].checksum, 0x1111222233334444ull);
  EXPECT_EQ(back.value().shards[1].file, "");  // "-" decodes to empty
}

TEST(ManifestFormatTest, DecodeRejectsTamperedBody) {
  std::string text = EncodeManifest(SampleManifest());
  const std::size_t pos = text.find("epoch 3");
  ASSERT_NE(pos, std::string::npos);
  text[pos + 6] = '9';  // body no longer matches the checksum trailer
  Result<ConstellationManifest> back = DecodeManifest(text);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInternal);
}

TEST(ManifestFormatTest, DecodeRejectsTruncation) {
  const std::string text = EncodeManifest(SampleManifest());
  Result<ConstellationManifest> back =
      DecodeManifest(text.substr(0, text.size() / 2));
  EXPECT_FALSE(back.ok());  // torn write: missing/invalid trailer
}

TEST(ManifestFormatTest, DecodeRejectsShardRowMismatch) {
  ConstellationManifest m = SampleManifest();
  m.shard_count = 3;  // one more than the rows present
  Result<ConstellationManifest> back = DecodeManifest(EncodeManifest(m));
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInternal);
}

TEST(ManifestFormatTest, SlotAlternatesOnGeneration) {
  EXPECT_EQ(ManifestSlotPath("s", 0), "s.manifest.a");
  EXPECT_EQ(ManifestSlotPath("s", 1), "s.manifest.b");
  EXPECT_EQ(ShardSnapshotPath("s", 2, 5, 40), "s.shard2.g5.b40");
  EXPECT_EQ(RoutingSnapshotPath("s", 9), "s.routing.e9");
}

// ---------------------------------------------------------------------------
// Commit protocol: manifests land at Start, cutover, and Stop; counters
// surface routing persistence instead of swallowing it.
// ---------------------------------------------------------------------------

TEST(ManifestCommitTest, StartCutoverAndStopEachCommitAGeneration) {
  const std::string base = CleanBase("manifest_commit.store");
  PointSet ps = GenerateIndep(80, 3, 11);
  ShardedServiceOptions sopt = DurableOptions(base, 2);
  ShardedFdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());
  EXPECT_EQ(service.manifest_commits(), 1u);   // the Start-end commit
  EXPECT_EQ(service.routing_persists(), 1u);   // .routing.e0
  EXPECT_EQ(service.routing_persist_failures(), 0u);

  std::vector<int> donor = service.routing_table()->SlotsOwnedBy(0);
  donor.resize(donor.size() / 2);
  ASSERT_TRUE(service.Migrate(MigrationPlan::Slots(donor, 1)).ok());
  EXPECT_EQ(service.manifest_commits(), 2u);   // the cutover commit
  EXPECT_EQ(service.routing_persists(), 2u);   // .routing.e1

  // New traffic dirties the ledger so Stop has something to commit (with a
  // clean ledger Stop's commit is a deliberate no-op).
  for (int id = 60; id < 70; ++id) {
    ASSERT_TRUE(service.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_GE(service.manifest_commits(), 3u);   // the Stop commit
  EXPECT_EQ(service.manifest_commit_failures(), 0u);
  EXPECT_EQ(service.routing_persists(), 2u);   // epoch unchanged: no rewrite

  Result<LoadedManifest> loaded = LoadNewestManifest(base);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().manifest.epoch, 1);
  EXPECT_EQ(loaded.value().manifest.shard_count, 2);
  for (const ManifestShardEntry& e : loaded.value().manifest.shards) {
    ASSERT_FALSE(e.file.empty()) << "shard " << e.index << " never persisted";
    Result<std::uint64_t> cksum = ChecksumFile(JoinDirOf(base, e.file));
    ASSERT_TRUE(cksum.ok()) << cksum.status().ToString();
    EXPECT_EQ(cksum.value(), e.checksum) << "shard " << e.index;
  }
}

TEST_F(ManifestCrashGuard, RoutingPersistFailureIsCountedNotSwallowed) {
  const std::string base = CleanBase("manifest_routing_fail.store");
  PointSet ps = GenerateIndep(60, 3, 12);
  ShardedServiceOptions sopt = DurableOptions(base, 2);
  ShardedFdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 40)).ok());

  // The next routing write (the epoch-1 cutover's) dies mid-protocol; the
  // old code returned void and dropped this on the floor.
  CrashPoints::Arm("shard.routing.tmp_written");
  std::vector<int> donor = service.routing_table()->SlotsOwnedBy(0);
  donor.resize(donor.size() / 2);
  ASSERT_TRUE(service.Migrate(MigrationPlan::Slots(donor, 1)).ok());
  EXPECT_EQ(service.routing_persist_failures(), 1u);
  EXPECT_GE(service.manifest_commit_failures(), 1u);
  CrashPoints::Reset();
  (void)service.Stop();
}

TEST(ManifestCommitTest, TickerCommitsBetweenCutovers) {
  const std::string base = CleanBase("manifest_ticker.store");
  PointSet ps = GenerateIndep(80, 3, 13);
  ShardedServiceOptions sopt = DurableOptions(base, 2);
  sopt.manifest_commit_every_ms = 10;
  ShardedFdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 40)).ok());
  const uint64_t base_commits = service.manifest_commits();  // Start's
  // New batches dirty the ledger; with no cutover in sight only the ticker
  // can reference them in a manifest.
  for (int id = 40; id < 70; ++id) {
    ASSERT_TRUE(service.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  for (int tries = 0;
       tries < 400 && service.manifest_commits() <= base_commits; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GT(service.manifest_commits(), base_commits)
      << "ticker never committed the dirty ledger";
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_EQ(service.manifest_commit_failures(), 0u);
}

// ---------------------------------------------------------------------------
// Resume: the manifest is the topology authority.
// ---------------------------------------------------------------------------

TEST(ManifestResumeTest, ManifestNotConstructorDecidesTheShardCount) {
  const std::string base = CleanBase("manifest_topo.store");
  PointSet ps = GenerateIndep(80, 3, 17);
  std::vector<int> union_before;
  {
    ShardedFdRmsService service(3, DurableOptions(base, 3));
    ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());
    ASSERT_TRUE(service.Stop().ok());
    ExpectOwnershipMatchesRouting(service, &union_before);
  }
  // The old contract — "construct the resuming service with the persisted
  // shard count" — is gone: construct with 1, resume to 3.
  ShardedServiceOptions ropt = DurableOptions(base, 1);
  ropt.shard.resume_path = base;
  ShardedFdRmsService resumed(3, ropt);
  Status started = resumed.Start({});
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_TRUE(resumed.resumed());
  EXPECT_EQ(resumed.num_shards(), 3);
  ASSERT_TRUE(resumed.Stop().ok());
  std::vector<int> union_after;
  ExpectOwnershipMatchesRouting(resumed, &union_after);
  EXPECT_EQ(union_after, union_before);
}

TEST(ManifestResumeTest, SnapshotsWithoutManifestFailLoudly) {
  const std::string base = CleanBase("manifest_orphan.store");
  {  // versioned-looking snapshot files, no manifest: a torn store
    std::ofstream(base + ".shard0.g1.b0") << "snapshot bytes";
    std::ofstream(base + ".routing.e0") << "routing bytes";
  }
  ShardedServiceOptions ropt = DurableOptions(base, 2);
  ropt.shard.resume_path = base;
  ShardedFdRmsService service(3, ropt);
  Status started = service.Start({});
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kFailedPrecondition)
      << started.ToString();
}

TEST(ManifestResumeTest, OldTornStateLayoutIsRejectedNotGuessed) {
  const std::string base = CleanBase("manifest_legacy.store");
  {  // the pre-manifest layout: mutable .shard<i> files + .routing, which
     // the old resume would happily load even when mutually inconsistent
    std::ofstream(base + ".shard0") << "stale shard 0 snapshot";
    std::ofstream(base + ".shard1") << "stale shard 1 snapshot";
    std::ofstream(base + ".routing") << "routing from another moment";
  }
  ShardedServiceOptions ropt = DurableOptions(base, 2);
  ropt.shard.resume_path = base;
  ShardedFdRmsService service(3, ropt);
  Status started = service.Start({});
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kFailedPrecondition)
      << started.ToString();
}

TEST(ManifestResumeTest, FreshDirectoryBootsFreshNotResumed) {
  const std::string base = CleanBase("manifest_fresh.store");
  PointSet ps = GenerateIndep(40, 3, 19);
  ShardedServiceOptions ropt = DurableOptions(base, 2);
  ropt.shard.resume_path = base;  // nothing there yet
  ShardedFdRmsService service(3, ropt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 30)).ok());
  EXPECT_FALSE(service.resumed());
  EXPECT_EQ(service.num_shards(), 2);
  EXPECT_GE(service.manifest_commits(), 1u);  // first boot still commits
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ManifestResumeTest, ResumePathMustMatchPersistPath) {
  const std::string base = CleanBase("manifest_mismatch.store");
  ShardedServiceOptions ropt = DurableOptions(base, 2);
  ropt.shard.resume_path = base + ".elsewhere";
  ShardedFdRmsService service(3, ropt);
  Status started = service.Start({});
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kInvalidArgument);

  ShardedServiceOptions nopersist = DurableOptions(base, 2);
  nopersist.shard.persist_every_batches = 0;  // persistence off
  nopersist.shard.resume_path = base;
  ShardedFdRmsService service2(3, nopersist);
  Status started2 = service2.Start({});
  ASSERT_FALSE(started2.ok());
  EXPECT_EQ(started2.code(), StatusCode::kInvalidArgument);
}

TEST(ManifestResumeTest, DeferredTopologyGuardsBeforeStart) {
  const std::string base = CleanBase("manifest_guards.store");
  ShardedServiceOptions ropt = DurableOptions(base, 2);
  ropt.shard.resume_path = base;
  ShardedFdRmsService service(3, ropt);
  // No shards exist until Start resolves the manifest.
  PointSet ps = GenerateIndep(4, 3, 20);
  EXPECT_EQ(service.Submit({FdRms::BatchOp::Kind::kInsert, 0, ps.Get(0)})
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Flush().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Query(), nullptr);
}

TEST(ManifestResumeTest, TornNewestManifestFallsBackToPreviousGeneration) {
  const std::string base = CleanBase("manifest_torn.store");
  PointSet ps = GenerateIndep(80, 3, 21);
  {
    ShardedFdRmsService service(3, DurableOptions(base, 2));
    ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());       // gen 1
    std::vector<int> donor = service.routing_table()->SlotsOwnedBy(0);
    donor.resize(donor.size() / 2);
    ASSERT_TRUE(service.Migrate(MigrationPlan::Slots(donor, 1)).ok());  // gen 2
    // Post-migration traffic dirties the ledger; Stop commits it as gen 3.
    for (int id = 60; id < 80; ++id) {
      ASSERT_TRUE(service.SubmitInsert(id, ps.Get(id)).ok());
    }
    ASSERT_TRUE(service.Flush().ok());
    ASSERT_TRUE(service.Stop().ok());                        // gen 3
  }
  // Tear the slot holding the newest generation mid-write.
  Result<LoadedManifest> before = LoadNewestManifest(base);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(before.value().present_slots, 2);
  ASSERT_EQ(before.value().manifest.generation, 3);
  TruncateFile(ManifestSlotPath(base, before.value().slot), 30);

  ShardedServiceOptions ropt = DurableOptions(base, 2);
  ropt.shard.resume_path = base;
  ShardedFdRmsService resumed(3, ropt);
  Status started = resumed.Start({});
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_TRUE(resumed.resumed());
  EXPECT_EQ(resumed.epoch(), 1u);  // gen 2 = the post-migration epoch
  ASSERT_TRUE(resumed.Stop().ok());
  // Gen 2 predates the late inserts: exactly the initial 60 tuples, routed
  // by the post-migration epoch.
  std::vector<int> restored;
  ExpectOwnershipMatchesRouting(resumed, &restored);
  std::vector<int> initial_ids;
  for (int i = 0; i < 60; ++i) initial_ids.push_back(i);
  EXPECT_EQ(restored, initial_ids);
}

TEST(ManifestResumeTest, BothSlotsCorruptRefusesToServe) {
  const std::string base = CleanBase("manifest_allcorrupt.store");
  PointSet ps = GenerateIndep(60, 3, 22);
  {
    ShardedFdRmsService service(3, DurableOptions(base, 2));
    ASSERT_TRUE(service.Start(AsTuples(ps, 40)).ok());
    std::vector<int> donor = service.routing_table()->SlotsOwnedBy(0);
    donor.resize(donor.size() / 2);
    ASSERT_TRUE(service.Migrate(MigrationPlan::Slots(donor, 1)).ok());
    ASSERT_TRUE(service.Stop().ok());
  }
  TruncateFile(ManifestSlotPath(base, 0), 10);
  TruncateFile(ManifestSlotPath(base, 1), 10);
  ShardedServiceOptions ropt = DurableOptions(base, 2);
  ropt.shard.resume_path = base;
  ShardedFdRmsService resumed(3, ropt);
  Status started = resumed.Start({});
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kInternal) << started.ToString();
}

TEST(ManifestResumeTest, CorruptedSnapshotFailsItsManifestChecksum) {
  const std::string base = CleanBase("manifest_badsnap.store");
  PointSet ps = GenerateIndep(60, 3, 23);
  {
    ShardedFdRmsService service(3, DurableOptions(base, 2));
    ASSERT_TRUE(service.Start(AsTuples(ps, 40)).ok());
    ASSERT_TRUE(service.Stop().ok());
  }
  Result<LoadedManifest> loaded = LoadNewestManifest(base);
  ASSERT_TRUE(loaded.ok());
  ASSERT_FALSE(loaded.value().manifest.shards[0].file.empty());
  CorruptFile(JoinDirOf(base, loaded.value().manifest.shards[0].file));

  ShardedServiceOptions ropt = DurableOptions(base, 2);
  ropt.shard.resume_path = base;
  ShardedFdRmsService resumed(3, ropt);
  Status started = resumed.Start({});
  ASSERT_FALSE(started.ok());
  EXPECT_EQ(started.code(), StatusCode::kInternal) << started.ToString();
}

TEST(ManifestResumeTest, RetiredShardSnapshotIsSupersededNotResurrected) {
  const std::string base = CleanBase("manifest_retire.store");
  PointSet ps = GenerateIndep(100, 3, 24);
  std::vector<int> union_before;
  uint64_t epoch_before = 0;
  {
    ShardedFdRmsService service(3, DurableOptions(base, 3));
    ASSERT_TRUE(service.Start(AsTuples(ps, 80)).ok());
    // Delete some tuples so "resurrection" would be observable as extra
    // live ids, then retire shard 2 (its last snapshot stays on disk until
    // the post-retire commits supersede it).
    for (int id = 0; id < 20; ++id) {
      ASSERT_TRUE(service.SubmitDelete(id).ok());
    }
    ASSERT_TRUE(service.Flush().ok());
    ASSERT_TRUE(service.RemoveShard().ok());
    // Post-retirement traffic: the next commit's two-generation GC window
    // closes over the victim's snapshot and unlinks it.
    for (int id = 80; id < 100; ++id) {
      ASSERT_TRUE(service.SubmitInsert(id, ps.Get(id)).ok());
    }
    ASSERT_TRUE(service.Flush().ok());
    ASSERT_TRUE(service.Stop().ok());
    epoch_before = service.epoch();
    ExpectOwnershipMatchesRouting(service, &union_before);
    ASSERT_EQ(service.num_shards(), 2);
  }
  // The Stop-commit's GC window has closed over the victim: no .shard2
  // snapshot survives to be mistaken for live state.
  for (const std::string& f : FilesWithPrefix(base)) {
    EXPECT_EQ(f.find(".shard2."), std::string::npos)
        << "victim snapshot " << f << " survived retirement";
  }
  ShardedServiceOptions ropt = DurableOptions(base, 3);
  ropt.shard.resume_path = base;
  ShardedFdRmsService resumed(3, ropt);
  Status started = resumed.Start({});
  ASSERT_TRUE(started.ok()) << started.ToString();
  EXPECT_EQ(resumed.num_shards(), 2);  // not 3: the manifest knows
  EXPECT_EQ(resumed.epoch(), epoch_before);
  ASSERT_TRUE(resumed.Stop().ok());
  std::vector<int> union_after;
  ExpectOwnershipMatchesRouting(resumed, &union_after);
  EXPECT_EQ(union_after, union_before);  // deleted tuples stayed dead
}

// ---------------------------------------------------------------------------
// Crash matrix: inject a crash at every step of the multi-file commit and
// prove resume lands on exactly the pre- or post-commit constellation.
// ---------------------------------------------------------------------------

struct CrashCase {
  const char* point;     ///< armed before the migration fires
  bool post_migration;   ///< resume must see the post-cutover epoch
};

class ManifestCrashMatrixTest
    : public ManifestCrashGuard,
      public ::testing::WithParamInterface<CrashCase> {};

TEST_P(ManifestCrashMatrixTest, ResumeLandsOnACommittedConstellation) {
  const CrashCase& cc = GetParam();
  const std::string base =
      CleanBase(std::string("manifest_crash.") + cc.point + ".store");
  PointSet ps = GenerateIndep(80, 3, 25);
  std::vector<int> initial_ids;
  for (int i = 0; i < 60; ++i) initial_ids.push_back(i);

  ShardedServiceOptions sopt = DurableOptions(base, 2);
  // Effectively-manual persist cadence: shard saves happen only inside
  // manifest commits, so the armed crash point fires at a deterministic
  // step of the *cutover* commit rather than on a writer's own schedule.
  sopt.shard.persist_every_batches = 1 << 20;
  uint64_t epoch_pre = 0;
  {
    ShardedFdRmsService service(3, sopt);
    ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());
    epoch_pre = service.epoch();
    CrashPoints::Arm(cc.point);  // after Start: target the cutover commit
    std::vector<int> donor = service.routing_table()->SlotsOwnedBy(0);
    donor.resize(donor.size() / 2);
    ASSERT_FALSE(donor.empty());
    ASSERT_TRUE(service.Migrate(MigrationPlan::Slots(donor, 1)).ok());
    EXPECT_TRUE(CrashPoints::crashed())
        << cc.point << " never fired during the cutover commit";
    // The "dead" process can still be Stop()ed, but nothing it does from
    // here reaches disk — exactly like a real crash.
    (void)service.Stop();
  }
  CrashPoints::Reset();

  ShardedServiceOptions ropt = sopt;
  ropt.shard.resume_path = base;
  ShardedFdRmsService resumed(3, ropt);
  Status started = resumed.Start({});
  ASSERT_TRUE(started.ok()) << cc.point << ": " << started.ToString();
  EXPECT_TRUE(resumed.resumed());
  const uint64_t expect_epoch = cc.post_migration ? epoch_pre + 1 : epoch_pre;
  EXPECT_EQ(resumed.epoch(), expect_epoch) << cc.point;
  ASSERT_TRUE(resumed.Stop().ok());

  // Whichever side of the commit point we landed on, the constellation is
  // internally consistent: ownership matches the resumed routing epoch and
  // no tuple was lost or duplicated.
  std::vector<int> union_after;
  ExpectOwnershipMatchesRouting(resumed, &union_after);
  EXPECT_EQ(union_after, initial_ids) << cc.point;
}

INSTANTIATE_TEST_SUITE_P(
    CommitSteps, ManifestCrashMatrixTest,
    ::testing::Values(
        // Before anything durable happens: trivially pre-migration.
        CrashCase{"shard.cutover.pre_manifest", false},
        // Mid shard-snapshot save: commit aborts, old manifest stands.
        CrashCase{"serve.persist.tmp_written", false},
        CrashCase{"serve.persist.renamed", false},
        CrashCase{"serve.persist.dir_synced", false},
        // Mid routing-snapshot write: same.
        CrashCase{"shard.routing.tmp_written", false},
        CrashCase{"shard.routing.renamed", false},
        CrashCase{"shard.routing.dir_synced", false},
        // Manifest tmp written but never renamed: old slot still wins.
        CrashCase{"shard.manifest.tmp_written", false},
        // Slot renamed: the new generation is the store's truth.
        CrashCase{"shard.manifest.renamed", true},
        CrashCase{"shard.manifest.dir_synced", true},
        // After the full commit: post-migration, by definition.
        CrashCase{"shard.cutover.committed", true}),
    [](const ::testing::TestParamInfo<CrashCase>& info) {
      std::string name = info.param.point;
      std::replace(name.begin(), name.end(), '.', '_');
      return name;
    });

}  // namespace
}  // namespace fdrms
