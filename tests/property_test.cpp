/// Cross-module property tests: randomized instances validated against
/// independent oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/exact2d.h"
#include "baselines/greedy.h"
#include "common/rng.h"
#include "data/generators.h"
#include "eval/workload.h"
#include "lp/simplex.h"
#include "setcover/dynamic_set_cover.h"

namespace fdrms {
namespace {

TEST(LpPropertyTest, OptimumDominatesAllFeasibleVertexCandidates) {
  // For random small LPs, the simplex optimum must upper-bound the
  // objective at any feasible point we can construct by rounding random
  // candidates into the feasible region.
  Rng rng(71);
  for (int trial = 0; trial < 40; ++trial) {
    int n = 2 + rng.UniformInt(3);
    int m = 2 + rng.UniformInt(4);
    LpProblem lp;
    lp.c.resize(n);
    for (double& v : lp.c) v = rng.Uniform(-1.0, 1.0);
    lp.A.assign(m, std::vector<double>(n));
    lp.b.resize(m);
    for (int i = 0; i < m; ++i) {
      for (double& v : lp.A[i]) v = rng.Uniform(0.1, 1.0);  // all-positive A
      lp.b[i] = rng.Uniform(0.5, 2.0);  // => bounded, feasible at 0
    }
    LpSolution sol = SolveLp(lp);
    ASSERT_EQ(sol.status, LpStatus::kOptimal) << "trial " << trial;
    // The solution itself must be feasible.
    for (int i = 0; i < m; ++i) {
      double lhs = 0.0;
      for (int j = 0; j < n; ++j) lhs += lp.A[i][j] * sol.x[j];
      EXPECT_LE(lhs, lp.b[i] + 1e-7);
    }
    for (double v : sol.x) EXPECT_GE(v, -1e-9);
    // Random feasible points never beat it.
    for (int probe = 0; probe < 200; ++probe) {
      std::vector<double> x(n);
      for (double& v : x) v = rng.Uniform();
      // Scale into the feasible region.
      double worst_ratio = 1.0;
      for (int i = 0; i < m; ++i) {
        double lhs = 0.0;
        for (int j = 0; j < n; ++j) lhs += lp.A[i][j] * x[j];
        if (lhs > lp.b[i]) worst_ratio = std::min(worst_ratio, lp.b[i] / lhs);
      }
      double value = 0.0;
      for (int j = 0; j < n; ++j) value += lp.c[j] * x[j] * worst_ratio;
      EXPECT_LE(value, sol.objective + 1e-7)
          << "feasible point beats 'optimal' (trial " << trial << ")";
    }
  }
}

TEST(SetCoverPropertyTest, StableSolutionWithinLogBoundOfGreedy) {
  // Random instances: after churn, the stable solution's size must stay
  // within the Theorem-1 factor of a fresh greedy solution (our stand-in
  // for OPT's order of magnitude).
  Rng rng(72);
  for (int trial = 0; trial < 10; ++trial) {
    int m = 50 + rng.UniformInt(150);
    int num_sets = 20 + rng.UniformInt(60);
    DynamicSetCover dynamic(m);
    for (int e = 0; e < m; ++e) {
      int degree = 1 + rng.UniformInt(5);
      for (int j = 0; j < degree; ++j) {
        dynamic.AddMembership(e, rng.UniformInt(num_sets));
      }
    }
    std::vector<int> universe(m);
    for (int i = 0; i < m; ++i) universe[i] = i;
    dynamic.InitializeGreedy(universe);
    for (int op = 0; op < 400; ++op) {
      int e = rng.UniformInt(m);
      int s = rng.UniformInt(num_sets);
      if (rng.Uniform() < 0.5) {
        dynamic.AddMembership(e, s);
      } else if (dynamic.system().SetsContaining(e).size() > 1) {
        dynamic.RemoveMembership(e, s);
      }
    }
    ASSERT_TRUE(dynamic.CheckInvariants().ok());
    int dynamic_size = dynamic.CoverSize();
    // Fresh greedy on the same (mutated) incidence.
    dynamic.InitializeGreedy(universe);
    int greedy_size = dynamic.CoverSize();
    double bound = (2.0 + 2.0 * std::log2(m)) * std::max(1, greedy_size);
    EXPECT_LE(dynamic_size, bound)
        << "trial " << trial << ": dynamic " << dynamic_size << " greedy "
        << greedy_size;
  }
}

TEST(GreedyPropertyTest, RegretNeverIncreasesAlongGreedyPrefix) {
  // The witness greedy adds the max-regret witness; the exact optimal LP
  // regret of the prefix must be non-increasing.
  PointSet ps = GenerateIndep(200, 3, 73);
  Database db;
  db.dim = 3;
  for (int i = 0; i < ps.size(); ++i) {
    db.ids.push_back(i);
    db.points.push_back(ps.Get(i));
  }
  Rng rng(74);
  GreedyRms greedy;
  std::vector<int> q = greedy.Compute(db, 1, 12, &rng);
  std::vector<int> skyline = SkylineIndices(db);
  auto exact_regret = [&](const std::vector<int>& prefix) {
    std::vector<std::vector<double>> q_rows;
    for (int id : prefix) q_rows.push_back(db.points[id]);
    double worst = 0.0;
    for (int idx : skyline) {
      worst = std::max(worst, MaxRegretForWitness(db.points[idx], q_rows));
    }
    return worst;
  };
  double prev = 1.0;
  for (size_t len = 1; len <= q.size(); ++len) {
    std::vector<int> prefix(q.begin(), q.begin() + len);
    double regret = exact_regret(prefix);
    EXPECT_LE(regret, prev + 1e-9) << "prefix length " << len;
    prev = regret;
  }
}

TEST(Exact2dPropertyTest, LowerBoundsEveryHeuristic) {
  // The exact optimum must lower-bound the regret achieved by greedy on
  // random 2-d instances.
  Rng rng(75);
  for (int trial = 0; trial < 6; ++trial) {
    PointSet ps = GenerateAntiCor(120, 2, 300 + trial);
    Database db;
    db.dim = 2;
    for (int i = 0; i < ps.size(); ++i) {
      db.ids.push_back(i);
      db.points.push_back(ps.Get(i));
    }
    Exact2dRms exact;
    const int r = 4;
    double optimum = exact.OptimalRegret(db, r);
    GreedyRms greedy;
    std::vector<int> gq = greedy.Compute(db, 1, r, &rng);
    // Exact regret of the greedy answer via dense sweep.
    double greedy_regret = 0.0;
    for (int s = 0; s <= 4000; ++s) {
      double t = s / 4000.0;
      double omega = 0.0, best = 0.0;
      for (int i = 0; i < db.size(); ++i) {
        double sc = t * db.points[i][0] + (1 - t) * db.points[i][1];
        omega = std::max(omega, sc);
        if (std::find(gq.begin(), gq.end(), db.ids[i]) != gq.end()) {
          best = std::max(best, sc);
        }
      }
      if (omega > 0) greedy_regret = std::max(greedy_regret, 1.0 - best / omega);
    }
    // 5e-4 covers the 4000-step sweep's discretization error in
    // greedy_regret (the sweep can only underestimate the true maximum).
    EXPECT_LE(optimum, greedy_regret + 5e-4) << "trial " << trial;
  }
}

TEST(WorkloadPropertyTest, DeterministicAcrossConstructions) {
  PointSet ps = GenerateIndep(120, 3, 76);
  Workload a(&ps, 42);
  Workload b(&ps, 42);
  EXPECT_EQ(a.initial_ids(), b.initial_ids());
  ASSERT_EQ(a.operations().size(), b.operations().size());
  for (size_t i = 0; i < a.operations().size(); ++i) {
    EXPECT_EQ(a.operations()[i].id, b.operations()[i].id);
    EXPECT_EQ(a.operations()[i].is_insert, b.operations()[i].is_insert);
  }
  Workload c(&ps, 43);
  EXPECT_NE(a.initial_ids(), c.initial_ids());
}

}  // namespace
}  // namespace fdrms
