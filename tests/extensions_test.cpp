/// Tests for the extension features beyond the paper's core algorithm:
/// ε auto-tuning (Sec. III-C's procedure), the Update/batch API, the
/// min-size RMS variants, the α-happiness query, and ARM.

#include <gtest/gtest.h>

#include <unordered_set>

#include "baselines/average_regret.h"
#include "baselines/greedy.h"
#include "baselines/minsize.h"
#include "core/fdrms.h"
#include "data/generators.h"
#include "eval/tuning.h"
#include "geometry/sampling.h"

namespace fdrms {
namespace {

Database MakeDatabase(const PointSet& ps) {
  Database db;
  db.dim = ps.dim();
  for (int i = 0; i < ps.size(); ++i) {
    db.ids.push_back(i);
    db.points.push_back(ps.Get(i));
  }
  return db;
}

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < ps.size(); ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

double SampledRegretOf(const Database& db, const std::vector<int>& ids, int k,
                       uint64_t seed = 55) {
  Rng rng(seed);
  auto dirs = SampleDirections(4000, db.dim, &rng);
  auto omega = OmegaKForDirections(dirs, db.points, k);
  std::unordered_set<int> chosen(ids.begin(), ids.end());
  std::vector<int> indices;
  for (int i = 0; i < db.size(); ++i) {
    if (chosen.count(db.ids[i]) > 0) indices.push_back(i);
  }
  return SampledMaxRegret(dirs, omega, db.points, indices);
}

TEST(AutoTuneTest, ProbesAllCandidatesAndPicksOne) {
  PointSet ps = GenerateAntiCor(400, 3, 1);
  FdRmsOptions base;
  base.k = 1;
  base.r = 8;
  base.max_utilities = 256;
  TuneResult tuned = AutoTuneEpsilon(AsTuples(ps), 3, base, 1000);
  EXPECT_EQ(tuned.probes.size(), 7u);  // the default candidate grid
  bool found = false;
  for (const auto& probe : tuned.probes) {
    EXPECT_LE(probe.result_size, base.r);
    EXPECT_GE(probe.m, 1);
    if (probe.eps == tuned.options.eps) found = true;
  }
  EXPECT_TRUE(found) << "chosen eps must be one of the candidates";
  // The tuned choice must be at least as good as the worst probe.
  double chosen_regret = 2.0, worst = 0.0;
  for (const auto& probe : tuned.probes) {
    worst = std::max(worst, probe.sampled_regret);
    if (probe.eps == tuned.options.eps) chosen_regret = probe.sampled_regret;
  }
  EXPECT_LE(chosen_regret, worst + 1e-9);
}

TEST(AutoTuneTest, KeepsBaseParameters) {
  PointSet ps = GenerateIndep(200, 2, 2);
  FdRmsOptions base;
  base.k = 2;
  base.r = 6;
  base.max_utilities = 128;
  base.seed = 12345;
  TuneResult tuned =
      AutoTuneEpsilon(AsTuples(ps), 2, base, 500, {0.01, 0.02});
  EXPECT_EQ(tuned.options.k, 2);
  EXPECT_EQ(tuned.options.r, 6);
  EXPECT_EQ(tuned.options.seed, 12345u);
  EXPECT_EQ(tuned.probes.size(), 2u);
}

TEST(UpdateApiTest, UpdateIsDeleteThenInsert) {
  PointSet ps = GenerateIndep(200, 3, 3);
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 6;
  opt.max_utilities = 128;
  FdRms algo(3, opt);
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  // Push tuple 0 to dominate everything; it must enter the result.
  ASSERT_TRUE(algo.Update(0, {1.0, 1.0, 1.0}).ok());
  std::vector<int> q = algo.Result();
  EXPECT_NE(std::find(q.begin(), q.end(), 0), q.end());
  ASSERT_TRUE(algo.Validate().ok());
  // Updating a missing id fails without side effects.
  EXPECT_EQ(algo.Update(9999, {0.5, 0.5, 0.5}).code(), StatusCode::kNotFound);
  ASSERT_TRUE(algo.Validate().ok());
}

TEST(UpdateApiTest, BatchStopsAtFirstFailure) {
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 4;
  opt.max_utilities = 64;
  FdRms algo(2, opt);
  ASSERT_TRUE(algo.Initialize({{0, {0.5, 0.5}}}).ok());
  std::vector<FdRms::BatchOp> ops = {
      {FdRms::BatchOp::Kind::kInsert, 1, {0.9, 0.1}},
      {FdRms::BatchOp::Kind::kUpdate, 1, {0.1, 0.9}},
      {FdRms::BatchOp::Kind::kDelete, 42, {}},   // fails
      {FdRms::BatchOp::Kind::kInsert, 2, {0.3, 0.3}},  // never applied
  };
  Status st = algo.ApplyBatch(ops);
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
  EXPECT_FALSE(algo.topk().tree().Contains(2));
  EXPECT_TRUE(algo.topk().tree().Contains(1));
  ASSERT_TRUE(algo.Validate().ok());
}

TEST(MinSizeTest, HittingSetMeetsItsRegretTarget) {
  PointSet ps = GenerateAntiCor(500, 3, 4);
  Database db = MakeDatabase(ps);
  Rng rng(5);
  for (double eps : {0.05, 0.15}) {
    std::vector<int> q = MinSizeHittingSet(db, 1, eps, 512, &rng);
    ASSERT_FALSE(q.empty());
    // Fresh directions; allow sampling slack above the in-sample target.
    EXPECT_LE(SampledRegretOf(db, q, 1), eps + 0.08) << "eps=" << eps;
  }
}

TEST(MinSizeTest, SizeShrinksAsBudgetLoosens) {
  PointSet ps = GenerateAntiCor(600, 4, 6);
  Database db = MakeDatabase(ps);
  Rng rng(7);
  size_t tight = MinSizeHittingSet(db, 1, 0.02, 384, &rng).size();
  size_t loose = MinSizeHittingSet(db, 1, 0.25, 384, &rng).size();
  EXPECT_LT(loose, tight);
  EXPECT_GE(loose, 1u);
}

TEST(MinSizeTest, EpsKernelCoversExtremes) {
  PointSet ps = GenerateIndep(500, 3, 8);
  Database db = MakeDatabase(ps);
  Rng rng(9);
  std::vector<int> q = MinSizeEpsKernel(db, 0.05, &rng);
  ASSERT_FALSE(q.empty());
  EXPECT_LE(SampledRegretOf(db, q, 1), 0.15);
  // Per-attribute maxima must be present (basis seeding).
  for (int j = 0; j < db.dim; ++j) {
    int best = 0;
    for (int i = 1; i < db.size(); ++i) {
      if (db.points[i][j] > db.points[best][j]) best = i;
    }
    EXPECT_NE(std::find(q.begin(), q.end(), db.ids[best]), q.end())
        << "missing attribute-" << j << " maximum";
  }
}

TEST(AlphaHappinessTest, EquivalentToHittingSetAtMatchingBudget) {
  PointSet ps = GenerateIndep(300, 3, 10);
  Database db = MakeDatabase(ps);
  Rng rng_a(11), rng_b(11);
  auto happy = AlphaHappinessQuery(db, 0.9, 256, &rng_a);
  auto hs = MinSizeHittingSet(db, 1, 0.1, 256, &rng_b);
  EXPECT_EQ(happy, hs);
}

TEST(ArmTest, BeatsMaxRegretGreedyOnAverageObjective) {
  PointSet ps = GenerateAntiCor(600, 4, 12);
  Database db = MakeDatabase(ps);
  Rng rng(13);
  AverageRegretGreedy arm(768);
  std::vector<int> arm_q = arm.Compute(db, 1, 8, &rng);
  GreedyStarRms mrr_greedy(768);
  std::vector<int> mrr_q = mrr_greedy.Compute(db, 1, 8, &rng);
  Rng eval_rng(14);
  double arm_avg = AverageRegretGreedy::AverageRegret(db, arm_q, 1, 4000,
                                                      &eval_rng);
  Rng eval_rng2(14);
  double mrr_avg = AverageRegretGreedy::AverageRegret(db, mrr_q, 1, 4000,
                                                      &eval_rng2);
  // ARM optimizes the average directly; allow a whisker of sampling noise.
  EXPECT_LE(arm_avg, mrr_avg + 0.005)
      << "ARM " << arm_avg << " vs max-regret greedy " << mrr_avg;
  EXPECT_LT(arm_avg, 0.05);
}

TEST(ArmTest, AverageRegretDecreasesWithBudget) {
  PointSet ps = GenerateIndep(400, 3, 15);
  Database db = MakeDatabase(ps);
  Rng rng(16);
  AverageRegretGreedy arm(512);
  double prev = 1.0;
  for (int r : {2, 6, 16}) {
    std::vector<int> q = arm.Compute(db, 1, r, &rng);
    Rng eval_rng(17);
    double avg = AverageRegretGreedy::AverageRegret(db, q, 1, 3000, &eval_rng);
    EXPECT_LE(avg, prev + 1e-9) << "r=" << r;
    prev = avg;
  }
}

}  // namespace
}  // namespace fdrms
