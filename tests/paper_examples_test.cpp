/// Tests pinning the paper's worked examples (Section II, Fig. 1 and
/// Examples 1-3) to the implementation, so the formal definitions in the
/// code provably match the paper's semantics.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/greedy.h"
#include "baselines/rms_algorithm.h"
#include "core/fdrms.h"
#include "geometry/point.h"

namespace fdrms {
namespace {

/// The database of Fig. 1.
Database PaperDatabase() {
  Database db;
  db.dim = 2;
  std::vector<Point> pts = {{0.2, 1.0}, {0.6, 0.8}, {0.7, 0.5}, {1.0, 0.1},
                            {0.4, 0.3}, {0.2, 0.7}, {0.3, 0.9}, {0.6, 0.6}};
  for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
    db.ids.push_back(i + 1);  // ids p1..p8
    db.points.push_back(pts[i]);
  }
  return db;
}

/// k-th best score in `db` under u.
double OmegaK(const Database& db, const Point& u, int k) {
  std::vector<double> scores;
  for (const auto& p : db.points) scores.push_back(Dot(u, p));
  std::sort(scores.rbegin(), scores.rend());
  return scores[k - 1];
}

/// Exact rr_k over a small set of tuples for one utility.
double RegretRatioK(const Database& db, const std::vector<int>& q_ids,
                    const Point& u, int k) {
  double best = 0.0;
  for (size_t i = 0; i < db.ids.size(); ++i) {
    if (std::find(q_ids.begin(), q_ids.end(), db.ids[i]) != q_ids.end()) {
      best = std::max(best, Dot(u, db.points[i]));
    }
  }
  return std::max(0.0, 1.0 - best / OmegaK(db, u, k));
}

/// Dense sweep of mrr_k over the 2-d utility pencil.
double MaxRegretK(const Database& db, const std::vector<int>& q_ids, int k) {
  double worst = 0.0;
  for (int s = 0; s <= 20000; ++s) {
    double angle = (M_PI / 2.0) * s / 20000.0;
    Point u{std::cos(angle), std::sin(angle)};
    worst = std::max(worst, RegretRatioK(db, q_ids, u, k));
  }
  return worst;
}

TEST(PaperExample1, Top2ResultsOfU1AndU2) {
  Database db = PaperDatabase();
  Point u1{0.42, 0.91};
  Point u2{0.91, 0.42};
  // Φ2(u1, P) = {p1, p2}; Φ2(u2, P) = {p2, p4}.
  auto top2 = [&](const Point& u) {
    std::vector<std::pair<double, int>> scored;
    for (size_t i = 0; i < db.ids.size(); ++i) {
      scored.emplace_back(Dot(u, db.points[i]), db.ids[i]);
    }
    std::sort(scored.rbegin(), scored.rend());
    return std::vector<int>{scored[0].second, scored[1].second};
  };
  auto t1 = top2(u1);
  std::sort(t1.begin(), t1.end());
  EXPECT_EQ(t1, (std::vector<int>{1, 2}));
  auto t2 = top2(u2);
  std::sort(t2.begin(), t2.end());
  EXPECT_EQ(t2, (std::vector<int>{2, 4}));
}

TEST(PaperExample1, RegretRatioOfQ1UnderU1) {
  // rr_2(u1, {p3, p4}) = 1 - 0.749/0.98 ≈ 0.236.
  Database db = PaperDatabase();
  Point u1{0.42, 0.91};
  EXPECT_NEAR(Dot(u1, db.points[2]), 0.749, 1e-9);   // p3
  EXPECT_NEAR(OmegaK(db, u1, 2), 0.98, 1e-9);        // p2's score
  EXPECT_NEAR(RegretRatioK(db, {3, 4}, u1, 2), 1.0 - 0.749 / 0.98, 1e-9);
}

TEST(PaperExample1, MaximumRegretOfQ1) {
  // mrr_2({p3, p4}) ≈ 0.444, attained at u = (0, 1).
  Database db = PaperDatabase();
  EXPECT_NEAR(MaxRegretK(db, {3, 4}, 2), 1.0 - 5.0 / 9.0, 1e-3);
  Point vertical{0.0, 1.0};
  EXPECT_NEAR(RegretRatioK(db, {3, 4}, vertical, 2), 1.0 - 5.0 / 9.0, 1e-9);
}

TEST(PaperExample1, Q2IsAPerfectRegretSet) {
  // {p1, p2, p4} is a (2, 0)-regret set: mrr_2 = 0.
  Database db = PaperDatabase();
  EXPECT_NEAR(MaxRegretK(db, {1, 2, 4}, 2), 0.0, 1e-9);
}

TEST(PaperExample2, OptimalRms22IsP1P4) {
  // RMS(2, 2): the paper reports Q* = {p1, p4} with mrr_2 ≈ 0.05. The
  // subset {p4, p7} achieves an mrr_2 within ~0.002 of it, so we assert
  // the optimum value ≈ 0.05 and that {p1, p4} is optimal up to that tie
  // rather than requiring one specific argmin.
  Database db = PaperDatabase();
  double best = 1.0;
  for (int a = 1; a <= 8; ++a) {
    for (int b = a + 1; b <= 8; ++b) {
      best = std::min(best, MaxRegretK(db, {a, b}, 2));
    }
  }
  EXPECT_NEAR(best, 0.05, 0.01);
  EXPECT_NEAR(MaxRegretK(db, {1, 4}, 2), best, 0.005);
}

TEST(PaperExample3, FdRmsOnFig1ReturnsLowRegretTriple) {
  // Example 3 runs RMS(1, 3) on P0 = {p1..p8}, then inserts p9 = (0.9, 0.6)
  // and deletes p1. We verify FD-RMS tracks results of near-optimal regret
  // at every step (the paper's concrete Q values depend on its specific
  // random draw of utility vectors).
  Database db = PaperDatabase();
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 3;
  opt.eps = 0.002;
  opt.max_utilities = 64;
  opt.seed = 5;
  FdRms algo(2, opt);
  std::vector<std::pair<int, Point>> tuples;
  for (size_t i = 0; i < db.ids.size(); ++i) {
    tuples.emplace_back(db.ids[i], db.points[i]);
  }
  ASSERT_TRUE(algo.Initialize(tuples).ok());
  auto q0 = algo.Result();
  EXPECT_LE(q0.size(), 3u);
  EXPECT_LE(MaxRegretK(db, q0, 1), 0.12);  // optimum is ~0.05 for r=3
  // ∆1 = <p9, +>.
  ASSERT_TRUE(algo.Insert(9, {0.9, 0.6}).ok());
  db.ids.push_back(9);
  db.points.push_back({0.9, 0.6});
  auto q1 = algo.Result();
  EXPECT_LE(q1.size(), 3u);
  EXPECT_LE(MaxRegretK(db, q1, 1), 0.12);
  // ∆2 = <p1, ->.
  ASSERT_TRUE(algo.Delete(1).ok());
  db.ids.erase(db.ids.begin());
  db.points.erase(db.points.begin());
  auto q2 = algo.Result();
  EXPECT_LE(q2.size(), 3u);
  EXPECT_LE(MaxRegretK(db, q2, 1), 0.12);
  ASSERT_TRUE(algo.Validate().ok());
}

TEST(PaperSection2, GreedyFindsNearOptimalRms22) {
  // The greedy baseline on Fig. 1 for RMS(1, 2) should pick extreme points
  // achieving low regret (the exact optimum for k=1, r=2 includes p4).
  Database db = PaperDatabase();
  Rng rng(3);
  GreedyRms greedy;
  std::vector<int> q = greedy.Compute(db, 1, 2, &rng);
  ASSERT_EQ(q.size(), 2u);
  double regret = MaxRegretK(db, q, 1);
  // Enumerate the true optimum for reference.
  double best = 1.0;
  for (int a = 1; a <= 8; ++a) {
    for (int b = a + 1; b <= 8; ++b) {
      best = std::min(best, MaxRegretK(db, {a, b}, 1));
    }
  }
  EXPECT_LE(regret, best + 0.08);
}

}  // namespace
}  // namespace fdrms
