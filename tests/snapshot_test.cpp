#include <gtest/gtest.h>

#include <sstream>

#include "core/snapshot.h"
#include "data/generators.h"

namespace fdrms {
namespace {

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < ps.size(); ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

TEST(SnapshotTest, RoundTripPreservesLogicalState) {
  PointSet ps = GenerateAntiCor(300, 3, 1);
  FdRmsOptions opt;
  opt.k = 2;
  opt.r = 7;
  opt.eps = 0.04;
  opt.max_utilities = 128;
  opt.seed = 99;
  FdRms algo(3, opt);
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  ASSERT_TRUE(algo.Delete(5).ok());
  ASSERT_TRUE(algo.Insert(1000, {0.9, 0.8, 0.7}).ok());

  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(algo, &stream).ok());
  auto loaded = LoadSnapshot(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  FdRms& restored = **loaded;
  EXPECT_EQ(restored.dim(), 3);
  EXPECT_EQ(restored.size(), algo.size());
  EXPECT_EQ(restored.options().k, 2);
  EXPECT_EQ(restored.options().r, 7);
  EXPECT_EQ(restored.options().seed, 99u);
  EXPECT_FALSE(restored.topk().tree().Contains(5));
  EXPECT_TRUE(restored.topk().tree().Contains(1000));
  ASSERT_TRUE(restored.Validate().ok());
  // Same utility sample (seeded) => identical Φ sets for every utility.
  for (int u = 0; u < restored.topk().num_utilities(); ++u) {
    EXPECT_EQ(restored.topk().ApproxTopK(u), algo.topk().ApproxTopK(u))
        << "utility " << u;
  }
  // The restored instance keeps serving updates.
  ASSERT_TRUE(restored.Insert(2000, {0.1, 0.9, 0.5}).ok());
  ASSERT_TRUE(restored.Validate().ok());
}

TEST(SnapshotTest, IdenticalStatesProduceIdenticalBytes) {
  PointSet ps = GenerateIndep(100, 2, 2);
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 4;
  opt.max_utilities = 64;
  FdRms a(2, opt), b(2, opt);
  ASSERT_TRUE(a.Initialize(AsTuples(ps)).ok());
  ASSERT_TRUE(b.Initialize(AsTuples(ps)).ok());
  std::stringstream sa, sb;
  ASSERT_TRUE(SaveSnapshot(a, &sa).ok());
  ASSERT_TRUE(SaveSnapshot(b, &sb).ok());
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(SnapshotTest, RejectsCorruptHeader) {
  std::stringstream stream("NOT-A-SNAPSHOT\n1 1 1 0.1 8 42\n0\n");
  EXPECT_EQ(LoadSnapshot(&stream).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, RejectsTruncatedTuples) {
  PointSet ps = GenerateIndep(50, 2, 3);
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 3;
  opt.max_utilities = 32;
  FdRms algo(2, opt);
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(algo, &stream).ok());
  std::string text = stream.str();
  std::istringstream cut(text.substr(0, text.size() * 2 / 3));
  EXPECT_FALSE(LoadSnapshot(&cut).ok());
}

TEST(SnapshotTest, RejectsBadParameters) {
  std::stringstream stream("FDRMS-SNAPSHOT-v1\n2 0 3 0.1 8 42\n0\n");  // k=0
  EXPECT_FALSE(LoadSnapshot(&stream).ok());
  std::stringstream stream2;  // empty
  EXPECT_FALSE(LoadSnapshot(&stream2).ok());
}

TEST(SnapshotTest, EmptyDatabaseRoundTrips) {
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 3;
  opt.max_utilities = 32;
  FdRms algo(2, opt);
  ASSERT_TRUE(algo.Initialize({}).ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(algo, &stream).ok());
  auto loaded = LoadSnapshot(&stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->size(), 0);
  ASSERT_TRUE((*loaded)->Insert(1, {0.5, 0.5}).ok());
}

}  // namespace
}  // namespace fdrms
