#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <sstream>
#include <vector>

#include "core/snapshot.h"
#include "data/generators.h"
#include "eval/workload.h"

namespace fdrms {
namespace {

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < ps.size(); ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

TEST(SnapshotTest, RoundTripPreservesLogicalState) {
  PointSet ps = GenerateAntiCor(300, 3, 1);
  FdRmsOptions opt;
  opt.k = 2;
  opt.r = 7;
  opt.eps = 0.04;
  opt.max_utilities = 128;
  opt.seed = 99;
  FdRms algo(3, opt);
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  ASSERT_TRUE(algo.Delete(5).ok());
  ASSERT_TRUE(algo.Insert(1000, {0.9, 0.8, 0.7}).ok());

  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(algo, &stream).ok());
  auto loaded = LoadSnapshot(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  FdRms& restored = **loaded;
  EXPECT_EQ(restored.dim(), 3);
  EXPECT_EQ(restored.size(), algo.size());
  EXPECT_EQ(restored.options().k, 2);
  EXPECT_EQ(restored.options().r, 7);
  EXPECT_EQ(restored.options().seed, 99u);
  EXPECT_FALSE(restored.topk().tree().Contains(5));
  EXPECT_TRUE(restored.topk().tree().Contains(1000));
  ASSERT_TRUE(restored.Validate().ok());
  // Same utility sample (seeded) => identical Φ sets for every utility.
  for (int u = 0; u < restored.topk().num_utilities(); ++u) {
    EXPECT_EQ(restored.topk().ApproxTopK(u), algo.topk().ApproxTopK(u))
        << "utility " << u;
  }
  // The restored instance keeps serving updates.
  ASSERT_TRUE(restored.Insert(2000, {0.1, 0.9, 0.5}).ok());
  ASSERT_TRUE(restored.Validate().ok());
}

TEST(SnapshotTest, IdenticalStatesProduceIdenticalBytes) {
  PointSet ps = GenerateIndep(100, 2, 2);
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 4;
  opt.max_utilities = 64;
  FdRms a(2, opt), b(2, opt);
  ASSERT_TRUE(a.Initialize(AsTuples(ps)).ok());
  ASSERT_TRUE(b.Initialize(AsTuples(ps)).ok());
  std::stringstream sa, sb;
  ASSERT_TRUE(SaveSnapshot(a, &sa).ok());
  ASSERT_TRUE(SaveSnapshot(b, &sb).ok());
  EXPECT_EQ(sa.str(), sb.str());
}

TEST(SnapshotTest, RejectsCorruptHeader) {
  std::stringstream stream("NOT-A-SNAPSHOT\n1 1 1 0.1 8 42\n0\n");
  EXPECT_EQ(LoadSnapshot(&stream).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, RejectsTruncatedTuples) {
  PointSet ps = GenerateIndep(50, 2, 3);
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 3;
  opt.max_utilities = 32;
  FdRms algo(2, opt);
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(algo, &stream).ok());
  std::string text = stream.str();
  std::istringstream cut(text.substr(0, text.size() * 2 / 3));
  EXPECT_FALSE(LoadSnapshot(&cut).ok());
}

TEST(SnapshotTest, RejectsBadParameters) {
  std::stringstream stream("FDRMS-SNAPSHOT-v1\n2 0 3 0.1 8 42\n0\n");  // k=0
  EXPECT_FALSE(LoadSnapshot(&stream).ok());
  std::stringstream stream2;  // empty
  EXPECT_FALSE(LoadSnapshot(&stream2).ok());
}

// Oracle check of the cover guarantee for one instance: every universe
// utility u_i must have some q in Q_t with <u_i, q> >= (1 - eps) * omega_k,
// where omega_k is recomputed brute-force from the live tuple set.
void ExpectRegretOracleBound(const FdRms& algo, const PointSet& ps,
                             const std::vector<int>& live,
                             const std::string& label) {
  const int k = algo.options().k;
  const double eps = algo.options().eps;
  const std::vector<int> q = algo.Result();
  ASSERT_FALSE(q.empty()) << label;
  const std::vector<Point>& utilities = algo.topk().utilities();
  for (int i = 0; i < algo.current_m(); ++i) {
    const Point& u = utilities[i];
    std::vector<double> scores;
    scores.reserve(live.size());
    for (int id : live) scores.push_back(Dot(u, ps.Get(id)));
    double omega_k = 0.0;  // fewer than k live tuples => omega_k = 0
    if (static_cast<int>(scores.size()) >= k) {
      std::nth_element(scores.begin(), scores.begin() + (k - 1), scores.end(),
                       std::greater<double>());
      omega_k = scores[k - 1];
    }
    double best = 0.0;
    for (int id : q) best = std::max(best, Dot(u, ps.Get(id)));
    EXPECT_GE(best, (1.0 - eps) * omega_k - 1e-9)
        << label << ": utility " << i << " regret ratio "
        << 1.0 - best / omega_k << " exceeds eps=" << eps;
  }
}

TEST(SnapshotTest, MidWorkloadSaveLoadReplayKeepsRegretBound) {
  // Persistence under churn: run the paper's dynamic protocol halfway,
  // snapshot, restore, replay the remaining operations on both instances.
  // Both must keep serving and both must satisfy the regret-ratio oracle
  // bound on the final live set. (Q_t itself may differ: the cover is
  // recomputed on load, and any stable solution is a valid carrier.)
  PointSet ps = GenerateAntiCor(300, 3, 9);
  Workload wl(&ps, 23);
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 10;
  opt.eps = 0.05;
  opt.max_utilities = 256;
  opt.seed = 77;
  FdRms original(3, opt);
  std::vector<std::pair<int, Point>> initial;
  for (int id : wl.initial_ids()) initial.emplace_back(id, ps.Get(id));
  ASSERT_TRUE(original.Initialize(initial).ok());

  const auto& ops = wl.operations();
  const int half = static_cast<int>(ops.size()) / 2;
  auto apply = [&](FdRms* algo, int from, int to) {
    for (int i = from; i < to; ++i) {
      Status st = ops[i].is_insert ? algo->Insert(ops[i].id, ps.Get(ops[i].id))
                                   : algo->Delete(ops[i].id);
      ASSERT_TRUE(st.ok()) << "op " << i << ": " << st.ToString();
    }
  };
  apply(&original, 0, half);

  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(original, &stream).ok());
  auto loaded = LoadSnapshot(&stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  FdRms& restored = **loaded;
  EXPECT_EQ(restored.size(), original.size());

  apply(&original, half, static_cast<int>(ops.size()));
  apply(&restored, half, static_cast<int>(ops.size()));

  ASSERT_TRUE(original.Validate().ok());
  ASSERT_TRUE(restored.Validate().ok());
  std::vector<int> live = wl.LiveIdsAfter(static_cast<int>(ops.size()) - 1);
  EXPECT_EQ(original.size(), static_cast<int>(live.size()));
  EXPECT_EQ(restored.size(), static_cast<int>(live.size()));
  ExpectRegretOracleBound(original, ps, live, "original");
  ExpectRegretOracleBound(restored, ps, live, "restored");
}

TEST(SnapshotTest, EmptyDatabaseRoundTrips) {
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 3;
  opt.max_utilities = 32;
  FdRms algo(2, opt);
  ASSERT_TRUE(algo.Initialize({}).ok());
  std::stringstream stream;
  ASSERT_TRUE(SaveSnapshot(algo, &stream).ok());
  auto loaded = LoadSnapshot(&stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->size(), 0);
  ASSERT_TRUE((*loaded)->Insert(1, {0.5, 0.5}).ok());
}

}  // namespace
}  // namespace fdrms
