#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "geometry/sampling.h"
#include "topk/topk_maintainer.h"

namespace fdrms {
namespace {

TEST(TopKMaintainerTest, SingleUtilityBasics) {
  std::vector<Point> utils{{1.0, 0.0}};
  TopKMaintainer m(2, /*k=*/1, /*eps=*/0.1, utils);
  ASSERT_TRUE(m.Insert(0, {0.5, 0.2}, nullptr).ok());
  ASSERT_TRUE(m.Insert(1, {0.9, 0.1}, nullptr).ok());
  ASSERT_TRUE(m.Insert(2, {0.85, 0.9}, nullptr).ok());
  // omega_1 = 0.9; threshold = 0.81: tuples 1 and 2 qualify.
  EXPECT_DOUBLE_EQ(m.OmegaK(0), 0.9);
  EXPECT_EQ(m.ApproxTopK(0), (std::unordered_set<int>{1, 2}));
  EXPECT_TRUE(m.ValidateAgainstBruteForce().ok());
}

TEST(TopKMaintainerTest, FewerTuplesThanKMeansEveryoneQualifies) {
  Rng rng(4);
  auto utils = SampleUtilityVectors(8, 3, &rng);
  TopKMaintainer m(3, /*k=*/5, /*eps=*/0.05, utils);
  for (int i = 0; i < 3; ++i) {
    Point p{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    ASSERT_TRUE(m.Insert(i, p, nullptr).ok());
  }
  for (int u = 0; u < m.num_utilities(); ++u) {
    EXPECT_EQ(m.ApproxTopK(u).size(), 3u);
    EXPECT_DOUBLE_EQ(m.OmegaK(u), 0.0);
  }
  EXPECT_TRUE(m.ValidateAgainstBruteForce().ok());
}

TEST(TopKMaintainerTest, DeltasDescribeExactMembershipChanges) {
  std::vector<Point> utils{{1.0, 0.0}, {0.0, 1.0}};
  TopKMaintainer m(2, /*k=*/1, /*eps=*/0.0, utils);
  std::vector<TopKDelta> deltas;
  ASSERT_TRUE(m.Insert(0, {0.5, 0.5}, &deltas).ok());
  // Tuple 0 becomes the top of both utilities.
  EXPECT_EQ(deltas.size(), 2u);
  deltas.clear();
  ASSERT_TRUE(m.Insert(1, {0.8, 0.2}, &deltas).ok());
  // Utility 0: tuple 1 displaces tuple 0 (eps = 0 keeps only the top).
  ASSERT_EQ(deltas.size(), 2u);
  bool saw_add = false, saw_remove = false;
  for (const auto& d : deltas) {
    if (d.added) {
      EXPECT_EQ(d.tuple_id, 1);
      EXPECT_EQ(d.utility, 0);
      saw_add = true;
    } else {
      EXPECT_EQ(d.tuple_id, 0);
      EXPECT_EQ(d.utility, 0);
      saw_remove = true;
    }
  }
  EXPECT_TRUE(saw_add);
  EXPECT_TRUE(saw_remove);
  // MemberOf mirrors the sets.
  EXPECT_EQ(m.MemberOf(0), (std::unordered_set<int>{1}));
  EXPECT_EQ(m.MemberOf(1), (std::unordered_set<int>{0}));
}

TEST(TopKMaintainerTest, DeleteOfNonMemberTouchesNothing) {
  std::vector<Point> utils{{1.0, 0.0}};
  TopKMaintainer m(2, /*k=*/1, /*eps=*/0.0, utils);
  ASSERT_TRUE(m.Insert(0, {0.9, 0.1}, nullptr).ok());
  ASSERT_TRUE(m.Insert(1, {0.1, 0.9}, nullptr).ok());
  std::vector<TopKDelta> deltas;
  ASSERT_TRUE(m.Delete(1, &deltas).ok());
  EXPECT_TRUE(deltas.empty());
  EXPECT_EQ(m.ApproxTopK(0), (std::unordered_set<int>{0}));
}

TEST(TopKMaintainerTest, DeleteMissingIdFails) {
  std::vector<Point> utils{{1.0, 0.0}};
  TopKMaintainer m(2, 1, 0.0, utils);
  EXPECT_EQ(m.Delete(3, nullptr).code(), StatusCode::kNotFound);
}

struct ChurnParam {
  int dim;
  int k;
  double eps;
  int num_utils;
  int num_ops;
  uint64_t seed;
};

class TopKChurnTest : public ::testing::TestWithParam<ChurnParam> {};

TEST_P(TopKChurnTest, StateMatchesBruteForceAndDeltasAreConsistent) {
  const ChurnParam param = GetParam();
  Rng rng(param.seed);
  auto utils = SampleUtilityVectors(param.num_utils, param.dim, &rng);
  TopKMaintainer m(param.dim, param.k, param.eps, utils);
  // Shadow Φ sets reconstructed from deltas only.
  std::vector<std::unordered_set<int>> shadow(param.num_utils);
  std::unordered_map<int, Point> live;
  int next_id = 0;
  for (int op = 0; op < param.num_ops; ++op) {
    std::vector<TopKDelta> deltas;
    bool do_insert = live.empty() || rng.Uniform() < 0.55;
    if (do_insert) {
      Point p(param.dim);
      for (double& v : p) v = rng.Uniform();
      ASSERT_TRUE(m.Insert(next_id, p, &deltas).ok());
      live.emplace(next_id, p);
      ++next_id;
    } else {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(static_cast<int>(live.size())));
      ASSERT_TRUE(m.Delete(it->first, &deltas).ok());
      live.erase(it);
    }
    for (const auto& d : deltas) {
      if (d.added) {
        EXPECT_TRUE(shadow[d.utility].insert(d.tuple_id).second)
            << "duplicate add delta";
      } else {
        EXPECT_EQ(shadow[d.utility].erase(d.tuple_id), 1u)
            << "remove delta for non-member";
      }
    }
    if (op % 20 == 19) {
      ASSERT_TRUE(m.ValidateAgainstBruteForce().ok()) << "op " << op;
      for (int u = 0; u < param.num_utils; ++u) {
        EXPECT_EQ(shadow[u], m.ApproxTopK(u)) << "delta stream diverged";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TopKChurnTest,
    ::testing::Values(ChurnParam{2, 1, 0.0, 8, 300, 21},
                      ChurnParam{2, 1, 0.1, 16, 300, 22},
                      ChurnParam{4, 3, 0.05, 32, 400, 23},
                      ChurnParam{6, 5, 0.02, 24, 400, 24},
                      ChurnParam{3, 2, 0.3, 12, 500, 25},
                      ChurnParam{8, 1, 0.01, 40, 300, 26}),
    [](const auto& info) {
      std::string name = "d";
      name += std::to_string(info.param.dim);
      name += 'k';
      name += std::to_string(info.param.k);
      name += 'm';
      name += std::to_string(info.param.num_utils);
      name += 's';
      name += std::to_string(info.param.seed);
      return name;
    });

}  // namespace
}  // namespace fdrms
