#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "baselines/dmm.h"
#include "baselines/exact2d.h"
#include "baselines/greedy.h"
#include "baselines/kernel_hs.h"
#include "baselines/rms_algorithm.h"
#include "baselines/sphere.h"
#include "common/rng.h"
#include "data/generators.h"
#include "geometry/sampling.h"

namespace fdrms {
namespace {

Database MakeDatabase(const PointSet& ps) {
  Database db;
  db.dim = ps.dim();
  for (int i = 0; i < ps.size(); ++i) {
    db.ids.push_back(i);
    db.points.push_back(ps.Get(i));
  }
  return db;
}

/// Sampled mrr_k used as the quality yardstick in these tests.
double RegretOf(const Database& db, const std::vector<int>& result_ids, int k,
                uint64_t seed = 99, int num_dirs = 4000) {
  Rng rng(seed);
  std::vector<Point> dirs = SampleDirections(num_dirs, db.dim, &rng);
  std::vector<double> omega_k = OmegaKForDirections(dirs, db.points, k);
  std::unordered_set<int> chosen(result_ids.begin(), result_ids.end());
  std::vector<int> q_indices;
  for (int i = 0; i < db.size(); ++i) {
    if (chosen.count(db.ids[i]) > 0) q_indices.push_back(i);
  }
  return SampledMaxRegret(dirs, omega_k, db.points, q_indices);
}

class AllAlgorithmsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    algos_.push_back(std::make_unique<GreedyRms>());
    algos_.push_back(std::make_unique<GeoGreedyRms>());
    algos_.push_back(std::make_unique<GreedyStarRms>(512));
    algos_.push_back(std::make_unique<DmmRrms>(256));
    algos_.push_back(std::make_unique<DmmGreedy>(256));
    algos_.push_back(std::make_unique<EpsKernelRms>(1024));
    algos_.push_back(std::make_unique<HittingSetRms>(256));
    algos_.push_back(std::make_unique<SphereRms>(512));
    algos_.push_back(std::make_unique<CubeRms>());
  }
  std::vector<std::unique_ptr<RmsAlgorithm>> algos_;
};

TEST_F(AllAlgorithmsTest, RespectBudgetAndReturnValidIds) {
  PointSet ps = GenerateIndep(400, 4, 61);
  Database db = MakeDatabase(ps);
  Rng rng(1);
  for (const auto& algo : algos_) {
    std::vector<int> q = algo->Compute(db, 1, 12, &rng);
    EXPECT_LE(static_cast<int>(q.size()), 12) << algo->name();
    EXPECT_GE(static_cast<int>(q.size()), 1) << algo->name();
    std::unordered_set<int> valid(db.ids.begin(), db.ids.end());
    std::unordered_set<int> seen;
    for (int id : q) {
      EXPECT_TRUE(valid.count(id) > 0) << algo->name();
      EXPECT_TRUE(seen.insert(id).second) << algo->name() << " duplicated id";
    }
  }
}

TEST_F(AllAlgorithmsTest, EmptyAndTinyDatabases) {
  Rng rng(2);
  Database empty;
  empty.dim = 3;
  for (const auto& algo : algos_) {
    EXPECT_TRUE(algo->Compute(empty, 1, 5, &rng).empty()) << algo->name();
  }
  Database one;
  one.dim = 3;
  one.ids = {42};
  one.points = {{0.5, 0.5, 0.5}};
  for (const auto& algo : algos_) {
    std::vector<int> q = algo->Compute(one, 1, 5, &rng);
    ASSERT_EQ(q.size(), 1u) << algo->name();
    EXPECT_EQ(q[0], 42) << algo->name();
  }
}

TEST_F(AllAlgorithmsTest, QualityBeatsRandomSelection) {
  PointSet ps = GenerateAntiCor(500, 3, 62);
  Database db = MakeDatabase(ps);
  Rng rng(3);
  // Random baseline regret (mean of a few draws).
  double random_regret = 0.0;
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<int> ids = db.ids;
    rng.Shuffle(&ids);
    ids.resize(10);
    random_regret += RegretOf(db, ids, 1);
  }
  random_regret /= 5.0;
  for (const auto& algo : algos_) {
    std::vector<int> q = algo->Compute(db, 1, 10, &rng);
    double regret = RegretOf(db, q, 1);
    EXPECT_LT(regret, random_regret) << algo->name() << " regret " << regret
                                     << " vs random " << random_regret;
  }
}

TEST(GreedyRmsTest, ZeroRegretOnceSkylineFits) {
  // If r >= skyline size, greedy reaches (near-)zero regret.
  PointSet ps = GenerateCorrelated(200, 2, 63);
  Database db = MakeDatabase(ps);
  Rng rng(4);
  GreedyRms greedy;
  std::vector<int> q = greedy.Compute(db, 1, 50, &rng);
  EXPECT_LE(RegretOf(db, q, 1), 1e-6);
}

TEST(GreedyStarRmsTest, RegretDecreasesWithK) {
  PointSet ps = GenerateIndep(400, 3, 64);
  Database db = MakeDatabase(ps);
  Rng rng(5);
  GreedyStarRms algo(512);
  double prev = 1.0;
  for (int k : {1, 3, 5}) {
    std::vector<int> q = algo.Compute(db, k, 8, &rng);
    double regret = RegretOf(db, q, k);
    EXPECT_LE(regret, prev + 0.02) << "k=" << k;
    prev = regret;
  }
}

TEST(CubeRmsTest, DeterministicAndGridSized) {
  PointSet ps = GenerateIndep(300, 3, 65);
  Database db = MakeDatabase(ps);
  Rng rng(6);
  CubeRms cube;
  std::vector<int> a = cube.Compute(db, 1, 16, &rng);
  std::vector<int> b = cube.Compute(db, 1, 16, &rng);
  EXPECT_EQ(a, b);
  EXPECT_LE(a.size(), 16u);  // t^2 = 16 cells max for d=3
}

TEST(Exact2dRmsTest, MatchesBruteForceOptimumOnTinyInputs) {
  Rng data_rng(66);
  for (int trial = 0; trial < 8; ++trial) {
    PointSet ps = GenerateIndep(12, 2, 100 + trial);
    Database db = MakeDatabase(ps);
    Exact2dRms exact;
    const int r = 3;
    double claimed = exact.OptimalRegret(db, r);
    // Brute force over all size-r subsets with a dense direction sweep.
    double best = 1.0;
    std::vector<int> subset(r);
    std::vector<int> indices(db.size());
    for (int i = 0; i < db.size(); ++i) indices[i] = i;
    std::vector<bool> mask(db.size(), false);
    std::fill(mask.begin(), mask.begin() + r, true);
    std::sort(mask.begin(), mask.end());
    do {
      std::vector<int> chosen;
      for (int i = 0; i < db.size(); ++i) {
        if (mask[i]) chosen.push_back(i);
      }
      double worst = 0.0;
      for (int s = 0; s <= 2000; ++s) {
        double t = s / 2000.0;
        double omega = 0.0, qbest = 0.0;
        for (int i = 0; i < db.size(); ++i) {
          double sc = t * db.points[i][0] + (1 - t) * db.points[i][1];
          omega = std::max(omega, sc);
        }
        for (int i : chosen) {
          double sc = t * db.points[i][0] + (1 - t) * db.points[i][1];
          qbest = std::max(qbest, sc);
        }
        if (omega > 0) worst = std::max(worst, 1.0 - qbest / omega);
      }
      best = std::min(best, worst);
    } while (std::next_permutation(mask.begin(), mask.end()));
    EXPECT_NEAR(claimed, best, 5e-3) << "trial " << trial;
    // And the returned subset achieves (close to) the optimum.
    Rng rng(7);
    std::vector<int> q = exact.Compute(db, 1, r, &rng);
    EXPECT_LE(RegretOf(db, q, 1), best + 5e-3);
  }
}

TEST(SkylineIndicesTest, MatchesDominanceDefinition) {
  PointSet ps = GenerateIndep(100, 3, 67);
  Database db = MakeDatabase(ps);
  std::vector<int> sky = SkylineIndices(db);
  std::unordered_set<int> sky_set(sky.begin(), sky.end());
  for (int i = 0; i < db.size(); ++i) {
    bool dominated = false;
    for (int j = 0; j < db.size(); ++j) {
      if (i != j && Dominates(db.points[j], db.points[i])) {
        dominated = true;
        break;
      }
    }
    EXPECT_EQ(sky_set.count(i) == 0, dominated) << "point " << i;
  }
}

}  // namespace
}  // namespace fdrms
