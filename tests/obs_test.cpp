#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/generators.h"
#include "eval/service_driver.h"
#include "eval/workload.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "obs/periodic_dumper.h"
#include "obs/phase_span.h"
#include "obs/pow2_hist.h"
#include "obs/registry.h"
#include "obs/snapshot_delta.h"
#include "obs/trace.h"
#include "shard/sharded_service.h"

// All suites here are named Obs* on purpose: the `tsan` CMake test preset
// (and the CI ThreadSanitizer job) selects them with ^(Serve|Shard|...|Obs).

namespace fdrms {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Pow2 bucketing vocabulary
// ---------------------------------------------------------------------------

TEST(ObsPow2Hist, BucketAssignmentMatchesContract) {
  EXPECT_EQ(Pow2HistBucket(0), 0u);
  EXPECT_EQ(Pow2HistBucket(1), 1u);
  EXPECT_EQ(Pow2HistBucket(2), 2u);
  EXPECT_EQ(Pow2HistBucket(3), 2u);
  EXPECT_EQ(Pow2HistBucket(4), 3u);
  EXPECT_EQ(Pow2HistBucket(1023), 10u);
  EXPECT_EQ(Pow2HistBucket(1024), 11u);
}

TEST(ObsPow2Hist, FloorAndCeilBracketEveryBucket) {
  for (size_t b = 0; b + 1 < kPow2HistBuckets; ++b) {
    const uint64_t floor = Pow2HistBucketFloor(b);
    const uint64_t ceil = Pow2HistBucketCeil(b);
    EXPECT_LE(floor, ceil) << "bucket " << b;
    EXPECT_EQ(Pow2HistBucket(floor), b);
    EXPECT_EQ(Pow2HistBucket(ceil), b);
    // The ceil is tight: one past it lands in the next bucket.
    EXPECT_EQ(Pow2HistBucket(ceil + 1), b + 1);
  }
}

TEST(ObsPow2Hist, QuantileOfEmptyHistogramIsZero) {
  EXPECT_EQ(Pow2HistQuantile({}, 0.5), 0.0);
  EXPECT_EQ(Pow2HistQuantile(std::vector<uint64_t>(kPow2HistBuckets, 0), 0.5),
            0.0);
  EXPECT_EQ(Pow2HistQuantile(std::vector<uint64_t>(kPow2HistBuckets, 0), 0.99),
            0.0);
}

TEST(ObsPow2Hist, QuantileClampsQ) {
  std::vector<uint64_t> hist(kPow2HistBuckets, 0);
  hist[3] = 10;  // all mass in [4, 8)
  // Out-of-range q clamps to [0, 1] rather than misbehaving.
  EXPECT_EQ(Pow2HistQuantile(hist, -1.0), Pow2HistQuantile(hist, 0.0));
  EXPECT_EQ(Pow2HistQuantile(hist, 2.0), Pow2HistQuantile(hist, 1.0));
  EXPECT_EQ(Pow2HistQuantile(hist, 2.0), 4.0);
  EXPECT_EQ(Pow2HistQuantile(hist, 0.5), 4.0);
}

TEST(ObsPow2Hist, LastBucketSaturation) {
  // Everything >= 2^(kPow2HistBuckets-2) = 32768 saturates into the last
  // open-ended bucket, and quantiles report that bucket's floor.
  const size_t last = kPow2HistBuckets - 1;
  EXPECT_EQ(Pow2HistBucket(32768), last);
  EXPECT_EQ(Pow2HistBucket(1u << 20), last);
  EXPECT_EQ(Pow2HistBucket(~uint64_t{0}), last);
  EXPECT_EQ(Pow2HistBucketFloor(last), 32768u);
  EXPECT_EQ(Pow2HistBucketCeil(last), 32768u);  // open-ended: floor reported

  Pow2Histogram h;
  h.Record(~uint64_t{0});
  h.Record(1u << 30);
  EXPECT_EQ(h.Count(), 2u);
  EXPECT_EQ(h.BucketSums()[last], 2u);
  EXPECT_EQ(h.Quantile(0.99), 32768.0);
}

// ---------------------------------------------------------------------------
// Metric primitives
// ---------------------------------------------------------------------------

TEST(ObsMetrics, CounterIncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  Gauge g;
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.Value(), 3.5);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.0);
}

TEST(ObsMetrics, LatencyHistogramRecordsAndInterpolates) {
  LatencyHistogram h({10.0, 100.0, 1000.0});
  EXPECT_EQ(h.Quantile(0.5), 0.0);  // empty
  for (int i = 0; i < 100; ++i) h.Record(50.0);
  EXPECT_EQ(h.Count(), 100u);
  // All mass in (10, 100]: every quantile interpolates inside that bucket.
  EXPECT_GT(h.Quantile(0.5), 10.0);
  EXPECT_LE(h.Quantile(0.5), 100.0);
  EXPECT_NEAR(h.SumUs(), 5000.0, 1.0);
  // Overflow reports the last boundary, never a fabricated larger value.
  h.Record(1e9);
  EXPECT_EQ(h.Quantile(1.0), 1000.0);
}

TEST(ObsMetrics, LatencyHistogramNegativeClampsToZero) {
  LatencyHistogram h({1.0, 10.0});
  h.Record(-5.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_EQ(h.BucketSums()[0], 1u);
}

TEST(ObsMetrics, DefaultLatencyBoundsAreStrictlyIncreasing) {
  const std::vector<double> bounds = DefaultLatencyBoundsUs();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_GE(bounds.back(), 1e7);
}

// The TSan-facing hammer: many threads pounding one counter and both
// histogram flavors must lose nothing and trip no race detector.
TEST(ObsMetrics, ConcurrentHammerLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter counter;
  Pow2Histogram pow2;
  LatencyHistogram latency(DefaultLatencyBoundsUs());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Increment();
        pow2.Record(static_cast<uint64_t>(i));
        latency.Record(static_cast<double>(t + 1));
      }
    });
  }
  // A racing reader: aggregated values must be monotone while writers run.
  uint64_t last = 0;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = counter.Value();
    ASSERT_GE(now, last);
    last = now;
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(pow2.Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(latency.Count(), uint64_t{kThreads} * kPerThread);
}

// ---------------------------------------------------------------------------
// Trace ring
// ---------------------------------------------------------------------------

TEST(ObsTrace, RecordsAndCollectsInOrder) {
  TraceRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  ring.Record("a", 1, 10, 7, 8);
  ring.Record("b", 2, 20);
  std::vector<TraceEvent> events = ring.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[0].start_us, 1u);
  EXPECT_EQ(events[0].duration_us, 10u);
  EXPECT_EQ(events[0].arg0, 7u);
  EXPECT_EQ(events[0].arg1, 8u);
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(ring.total_recorded(), 2u);
}

TEST(ObsTrace, WrapKeepsOnlyTheNewestWindow) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 10; ++i) ring.Record("e", i, 0, i);
  std::vector<TraceEvent> events = ring.Collect();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg0, 6 + i);  // events 6..9 survive
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
}

TEST(ObsTrace, ConcurrentWritersNeverSurfaceTornEvents) {
  TraceRing ring(64);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceEvent& e : ring.Collect()) {
        // Writers always store arg1 == arg0 + 1; a torn slot would break it.
        ASSERT_EQ(e.arg1, e.arg0 + 1);
        ASSERT_TRUE(e.name == "x" || e.name == "y");
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ring.Record(t % 2 == 0 ? "x" : "y", i, 1, i, i + 1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.total_recorded(), uint64_t{kThreads} * kPerThread);
}

TEST(ObsTrace, SingleWriterNeverDropsEvenAcrossWrap) {
  TraceRing ring(4);
  for (uint64_t i = 0; i < 100; ++i) ring.Record("e", i, 0, i, i + 1);
  EXPECT_EQ(ring.total_dropped(), 0u);
  EXPECT_EQ(ring.total_recorded(), 100u);
  EXPECT_EQ(ring.Collect().size(), 4u);
}

TEST(ObsTrace, WrapRacingWritersNeverMixPayloads) {
  // A tiny ring makes tickets alias the same slot constantly, exercising
  // the claim path: a writer that finds its slot mid-write or lapped must
  // drop its event rather than interleave payload stores with another
  // ticket's.
  TraceRing ring(4);
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 20000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      for (const TraceEvent& e : ring.Collect()) {
        // Writers always store arg1 == arg0 + 1; a mixed slot breaks it.
        ASSERT_EQ(e.arg1, e.arg0 + 1);
        ASSERT_EQ(e.name, "w");
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        ring.Record("w", i, 1, i, i + 1);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(ring.total_recorded(), uint64_t{kThreads} * kPerThread);
  EXPECT_LE(ring.total_dropped(), ring.total_recorded());
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistry, GetOrCreateReturnsStableHandles) {
  MetricRegistry reg;
  Counter* a = reg.GetCounter("ops_total", "ops");
  Counter* b = reg.GetCounter("ops_total", "ignored help");
  EXPECT_EQ(a, b);
  Counter* labelled = reg.GetCounter("ops_total", "ops", {{"shard", "0"}});
  EXPECT_NE(a, labelled);
  a->Increment(5);
  labelled->Increment(7);
  RegistrySnapshot snap = reg.Snapshot();
  const MetricSnapshot* plain = snap.Find("ops_total");
  const MetricSnapshot* shard0 = snap.Find("ops_total", {{"shard", "0"}});
  ASSERT_NE(plain, nullptr);
  ASSERT_NE(shard0, nullptr);
  EXPECT_EQ(plain->counter_value, 5u);
  EXPECT_EQ(shard0->counter_value, 7u);
  EXPECT_EQ(snap.Find("absent"), nullptr);
}

TEST(ObsRegistryDeathTest, FamilyTypeConflictAbortsEvenAcrossLabels) {
  // A Prometheus family carries exactly one # TYPE line, so the same name
  // under a different type — even with different labels — would render an
  // exposition whose TYPE mismatches some of its series.
  MetricRegistry reg;
  reg.GetCounter("fdrms_mixed_total", "c", {{"shard", "0"}});
  EXPECT_DEATH(reg.GetGauge("fdrms_mixed_total", "g", {{"shard", "1"}}),
               "re-registered");
}

TEST(ObsRegistry, SnapshotIsSortedByNameThenLabels) {
  MetricRegistry reg;
  reg.GetCounter("zeta_total", "z");
  reg.GetGauge("alpha", "a");
  reg.GetCounter("mid_total", "m", {{"shard", "1"}});
  reg.GetCounter("mid_total", "m", {{"shard", "0"}});
  RegistrySnapshot snap = reg.Snapshot();
  // 4 registered series + the 2 process-level series every snapshot
  // synthesizes (obs_registry_series, process_uptime_seconds).
  ASSERT_EQ(snap.metrics.size(), 6u);
  EXPECT_EQ(snap.metrics[0].name, "alpha");
  EXPECT_EQ(snap.metrics[1].name, "mid_total");
  EXPECT_EQ(snap.metrics[1].labels, (Labels{{"shard", "0"}}));
  EXPECT_EQ(snap.metrics[2].labels, (Labels{{"shard", "1"}}));
  EXPECT_EQ(snap.metrics[3].name, "obs_registry_series");
  EXPECT_EQ(snap.metrics[3].gauge_value, 4.0);
  EXPECT_EQ(snap.metrics[4].name, "process_uptime_seconds");
  EXPECT_EQ(snap.metrics[4].gauge_value, snap.uptime_seconds);
  EXPECT_EQ(snap.metrics[5].name, "zeta_total");
}

TEST(ObsRegistry, CountersNeverDecreaseAcrossScrapes) {
  MetricRegistry reg;
  Counter* c = reg.GetCounter("ops_total", "ops");
  Pow2Histogram* h = reg.GetPow2Histogram("depth", "queue depth");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        c->Increment();
        h->Record(3);
      }
    });
  }
  uint64_t last_counter = 0;
  uint64_t last_hist = 0;
  for (int i = 0; i < 200; ++i) {
    RegistrySnapshot snap = reg.Snapshot();
    const MetricSnapshot* mc = snap.Find("ops_total");
    const MetricSnapshot* mh = snap.Find("depth");
    ASSERT_NE(mc, nullptr);
    ASSERT_NE(mh, nullptr);
    ASSERT_GE(mc->counter_value, last_counter);
    ASSERT_GE(mh->count, last_hist);
    last_counter = mc->counter_value;
    last_hist = mh->count;
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& w : writers) w.join();
}

TEST(ObsRegistry, LatencyHistogramSnapshotCarriesBoundsAndSum) {
  MetricRegistry reg;
  LatencyHistogram* h =
      reg.GetLatencyHistogram("lat_us", "latency", {}, {10.0, 100.0});
  h->Record(5.0);
  h->Record(50.0);
  RegistrySnapshot snap = reg.Snapshot();
  const MetricSnapshot* m = snap.Find("lat_us");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->type, MetricType::kLatencyHistogram);
  EXPECT_EQ(m->bounds, (std::vector<double>{10.0, 100.0}));
  EXPECT_EQ(m->count, 2u);
  EXPECT_NEAR(m->sum, 55.0, 0.01);
  EXPECT_GT(m->Quantile(0.9), 10.0);
}

// ---------------------------------------------------------------------------
// PhaseSpan
// ---------------------------------------------------------------------------

TEST(ObsPhaseSpan, RecordsHistogramAndTraceOnce) {
  MetricRegistry reg;
  LatencyHistogram* h = reg.GetLatencyHistogram("phase_us", "phase");
  {
    PhaseSpan span(&reg, h, "test.phase");
    span.set_args(11, 22);
    const double us = span.Finish();
    EXPECT_GE(us, 0.0);
    span.Finish();  // idempotent: no double-record at scope exit
  }
  EXPECT_EQ(h->Count(), 1u);
  std::vector<TraceEvent> events = reg.trace().Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test.phase");
  EXPECT_EQ(events[0].arg0, 11u);
  EXPECT_EQ(events[0].arg1, 22u);
}

TEST(ObsPhaseSpan, NullPartsAreInert) {
  MetricRegistry reg;
  LatencyHistogram* h = reg.GetLatencyHistogram("phase_us", "phase");
  { PhaseSpan span(nullptr, h, "ignored"); }
  EXPECT_EQ(h->Count(), 1u);          // histogram still fed
  EXPECT_TRUE(reg.trace().Collect().empty());
  { PhaseSpan span(&reg, nullptr, "only.trace"); }
  EXPECT_EQ(reg.trace().Collect().size(), 1u);
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ObsExporters, PrometheusTextWellFormed) {
  MetricRegistry reg;
  reg.GetCounter("fdrms_ops_total", "Operations \"applied\"\n so far")
      ->Increment(3);
  reg.GetGauge("fdrms_depth", "Queue depth", {{"shard", "a\"b\\c"}})->Set(7);
  reg.GetLatencyHistogram("fdrms_lat_us", "Latency", {}, {1.0, 10.0})
      ->Record(5.0);
  reg.GetPow2Histogram("fdrms_batch", "Batch size")->Record(3);
  const std::string text = reg.PrometheusText();

  // One HELP/TYPE per family, escaped values, and the histogram grammar.
  // HELP escapes backslash and newline only (quotes stay, per the spec).
  EXPECT_NE(text.find("# HELP fdrms_ops_total Operations \"applied\"\\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fdrms_ops_total counter"), std::string::npos);
  EXPECT_NE(text.find("fdrms_ops_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fdrms_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("fdrms_depth{shard=\"a\\\"b\\\\c\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE fdrms_lat_us histogram"), std::string::npos);
  EXPECT_NE(text.find("fdrms_lat_us_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("fdrms_lat_us_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("fdrms_lat_us_sum 5"), std::string::npos);
  EXPECT_NE(text.find("fdrms_lat_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE fdrms_batch histogram"), std::string::npos);
  // Pow2 bucket 2 = [2,4): its le boundary is 3, cumulative count 1.
  EXPECT_NE(text.find("fdrms_batch_bucket{le=\"3\"} 1"), std::string::npos);
  EXPECT_EQ(text.find("# HELP fdrms_ops_total",
                      text.find("# HELP fdrms_ops_total") + 1),
            std::string::npos)
      << "HELP emitted twice for one family";
}

TEST(ObsExporters, PrometheusHistogramBucketsAreCumulative) {
  MetricRegistry reg;
  LatencyHistogram* h =
      reg.GetLatencyHistogram("lat_us", "l", {}, {1.0, 10.0, 100.0});
  h->Record(0.5);
  h->Record(5.0);
  h->Record(50.0);
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 3"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 3"), std::string::npos);
}

TEST(ObsExporters, JsonTextParsesStructurally) {
  MetricRegistry reg;
  reg.GetCounter("ops_total", "with \"quotes\" and \\slashes\\")->Increment();
  reg.GetLatencyHistogram("lat_us", "l", {{"shard", "0"}})->Record(3.0);
  reg.trace().Record("phase", 1, 2, 3, 4);
  const std::string json = reg.JsonText();
  // Balanced braces/brackets outside strings == structurally sound JSON
  // for this exporter's grammar (no nested strings with brackets).
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char ch : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (ch == '\\') {
      escaped = true;
    } else if (ch == '"') {
      in_string = !in_string;
    } else if (!in_string && (ch == '{' || ch == '[')) {
      ++depth;
    } else if (!in_string && (ch == '}' || ch == ']')) {
      --depth;
      ASSERT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
  EXPECT_NE(json.find("\"uptime_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"ops_total\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\""), std::string::npos);
  EXPECT_NE(json.find("\"phase\""), std::string::npos);
}

TEST(ObsExporters, DebugStringMentionsEverySeries) {
  MetricRegistry reg;
  reg.GetCounter("ops_total", "ops")->Increment(9);
  reg.GetGauge("depth", "d")->Set(4);
  reg.GetLatencyHistogram("lat_us", "l")->Record(10.0);
  const std::string page = reg.DebugString();
  EXPECT_NE(page.find("ops_total"), std::string::npos);
  EXPECT_NE(page.find("depth"), std::string::npos);
  EXPECT_NE(page.find("lat_us"), std::string::npos);
}

TEST(ObsExporters, WriteFileAtomicLeavesNoTempBehind) {
  const std::string path = "obs_test_atomic_write.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "hello\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "hello\n");
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Periodic dumper
// ---------------------------------------------------------------------------

TEST(ObsDumper, WritesFinalDumpOnStop) {
  auto reg = std::make_shared<MetricRegistry>();
  reg->GetCounter("fdrms_ops_total", "ops")->Increment(17);
  PeriodicDumperOptions opt;
  opt.prometheus_path = "obs_test_dump.prom";
  opt.json_path = "obs_test_dump.json";
  opt.interval_ms = 5;
  {
    PeriodicDumper dumper(reg, opt);
    dumper.Start();
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    dumper.Stop();
    EXPECT_GE(dumper.dumps(), 1u);
    EXPECT_EQ(dumper.dump_failures(), 0u);
  }
  std::ifstream prom(opt.prometheus_path);
  std::string text((std::istreambuf_iterator<char>(prom)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("fdrms_ops_total 17"), std::string::npos);
  std::ifstream json(opt.json_path);
  EXPECT_TRUE(json.good());
  std::remove(opt.prometheus_path.c_str());
  std::remove(opt.json_path.c_str());
}

TEST(ObsDumper, ConcurrentStopJoinsExactlyOnce) {
  auto reg = std::make_shared<MetricRegistry>();
  reg->GetCounter("fdrms_ops_total", "ops")->Increment();
  PeriodicDumperOptions opt;
  opt.prometheus_path = "obs_test_concurrent_stop.prom";
  opt.interval_ms = 1;
  PeriodicDumper dumper(reg, opt);
  dumper.Start();
  // All callers race Stop; exactly one may join the dump thread (a double
  // join is std::terminate), the rest must return immediately.
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&] { dumper.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
  EXPECT_GE(dumper.dumps(), 1u);
  dumper.Stop();  // still idempotent afterwards
  std::remove(opt.prometheus_path.c_str());
  std::remove((opt.prometheus_path + ".tmp").c_str());
}

// ---------------------------------------------------------------------------
// Live-service integration: the acceptance scrape
// ---------------------------------------------------------------------------

TEST(ObsServiceIntegration, RegistryScrapeMatchesServiceCounters) {
  PointSet ps = GenerateIndep(400, 3, 11);
  Workload wl(&ps, 7);
  ServiceLoadOptions opts;
  opts.num_readers = 2;
  opts.num_submitters = 2;
  opts.service.algo.r = 10;
  opts.service.queue_capacity = 1024;
  ServiceLoadResult res = RunServiceLoad(wl, opts);
  ASSERT_TRUE(res.consistent);

  // The scrape carries the writer/queue/batch/publish-latency series with
  // values matching what the result snapshot reported.
  for (const char* series :
       {"fdrms_ops_submitted_total", "fdrms_ops_applied_total",
        "fdrms_batches_total", "fdrms_publications_total",
        "fdrms_snapshot_version", "fdrms_queue_depth_pow2",
        "fdrms_batch_size_pow2", "fdrms_publish_latency_us",
        "fdrms_writer_drain_us", "fdrms_writer_apply_us",
        "fdrms_writer_publish_us"}) {
    EXPECT_NE(res.prometheus_text.find(series), std::string::npos)
        << "missing series " << series;
  }
  EXPECT_NE(res.prometheus_text.find("fdrms_publish_latency_us_count"),
            std::string::npos);
  EXPECT_GT(res.publish_p99_us, 0.0);
  EXPECT_GE(res.publish_p999_us, res.publish_p90_us);
  EXPECT_NE(res.json_text.find("fdrms_ops_applied_total"), std::string::npos);
  EXPECT_NE(res.debug_text.find("publish_latency_us"), std::string::npos);
  // ResultSnapshot fields are views over the registry: the applied count in
  // the exposition equals the final snapshot's.
  EXPECT_NE(res.prometheus_text.find("fdrms_ops_applied_total " +
                                     std::to_string(res.ops_applied)),
            std::string::npos);
}

TEST(ObsShardedIntegration, MigrationLifecycleIsObservable) {
  PointSet ps = GenerateIndep(500, 3, 23);
  Workload wl(&ps, 5);
  ShardedLoadOptions opts;
  opts.num_readers = 2;
  opts.num_submitters = 2;
  opts.service.num_shards = 2;
  opts.service.shard.algo.r = 10;
  opts.service.shard.queue_capacity = 1024;
  opts.migrations.push_back(
      {ShardedLoadOptions::MigrationEvent::Kind::kAddShard, 0.5, {}});
  ShardedLoadResult res = RunShardedLoad(wl, opts);
  ASSERT_TRUE(res.consistent);
  ASSERT_EQ(res.migrations_failed, 0u);
  ASSERT_EQ(res.migrations_attempted, 1u);

  // Per-shard series are labelled; the sharded layer's series are global.
  for (const char* series :
       {"fdrms_ops_applied_total{shard=\"0\"}",
        "fdrms_ops_applied_total{shard=\"1\"}",
        "fdrms_ops_applied_total{shard=\"2\"}", "fdrms_reads_total",
        "fdrms_merge_cache_hits_total", "fdrms_merge_cache_misses_total",
        "fdrms_epoch", "fdrms_shards", "fdrms_migrations_total 1",
        "fdrms_migration_ops_replayed_total",
        "fdrms_migration_freeze_us_count 1",
        "fdrms_migration_drain_us_count 1",
        "fdrms_migration_replay_us_count 1",
        "fdrms_migration_cutover_us_count 1"}) {
    EXPECT_NE(res.prometheus_text.find(series), std::string::npos)
        << "missing " << series << " in scrape:\n"
        << res.prometheus_text.substr(0, 2000);
  }
  // The migration trace carries the full lifecycle, in phase order.
  ASSERT_EQ(res.migration_trace.size(), 4u);
  EXPECT_EQ(res.migration_trace[0].name, "migration.freeze");
  EXPECT_EQ(res.migration_trace[1].name, "migration.drain");
  EXPECT_EQ(res.migration_trace[2].name, "migration.replay");
  EXPECT_EQ(res.migration_trace[3].name, "migration.cutover");
  const uint64_t cutover_epoch = res.migration_trace[3].arg0;
  EXPECT_EQ(cutover_epoch, res.final_epoch);
  // Phases nest inside the wall-clock order they ran in.
  EXPECT_LE(res.migration_trace[0].start_us, res.migration_trace[1].start_us);
  EXPECT_LE(res.migration_trace[1].start_us, res.migration_trace[2].start_us);
  EXPECT_LE(res.migration_trace[2].start_us, res.migration_trace[3].start_us);
  // Read-path cache telemetry adds up: every merged read either hit or
  // rebuilt (null pre-warm-up reads are counted as reads but neither).
  EXPECT_GT(res.merge_cache_hits + res.merge_cache_misses, 0u);
  EXPECT_NE(res.debug_text.find("=== ShardedFdRmsService ==="),
            std::string::npos);
  EXPECT_NE(res.debug_text.find("--- shard 2 ---"), std::string::npos);
}

TEST(ObsShardedIntegration, RebornShardIndexGetsFreshSeries) {
  // RemoveShard then AddShard re-creates index 2. The registry hands back
  // the same series for the same (name, labels), so the reborn instance
  // must carry a distinguishing gen label — otherwise its counters would
  // resume at the dead instance's totals, inflating its stats and (before
  // the Flush rendezvous went instance-local) letting Flush() report an
  // un-drained queue as flushed.
  PointSet ps = GenerateIndep(240, 3, 41);
  ShardedServiceOptions sopt;
  sopt.num_shards = 3;
  sopt.shard.algo.r = 6;
  sopt.shard.algo.max_utilities = 128;
  ShardedFdRmsService service(3, sopt);
  std::vector<std::pair<int, Point>> initial;
  for (int i = 0; i < 240; ++i) initial.emplace_back(i, ps.Get(i));
  ASSERT_TRUE(service.Start(initial).ok());

  ASSERT_TRUE(service.RemoveShard().ok());
  RegistrySnapshot mid = service.registry()->Snapshot();
  const MetricSnapshot* retired =
      mid.Find("fdrms_ops_applied_total", {{"shard", "2"}});
  ASSERT_NE(retired, nullptr);
  // The victim applied the migration deletes that drained it.
  EXPECT_GT(retired->counter_value, 0u);
  const uint64_t retired_applied = retired->counter_value;

  ASSERT_TRUE(service.AddShard().ok());
  RegistrySnapshot snap = service.registry()->Snapshot();
  const MetricSnapshot* old_series =
      snap.Find("fdrms_ops_applied_total", {{"shard", "2"}});
  const MetricSnapshot* new_series =
      snap.Find("fdrms_ops_applied_total", {{"shard", "2"}, {"gen", "1"}});
  ASSERT_NE(old_series, nullptr);
  ASSERT_NE(new_series, nullptr);
  // The dead instance's series is frozen; the reborn instance's series
  // covers only its own work (the slots migrated onto it).
  EXPECT_EQ(old_series->counter_value, retired_applied);
  auto reborn = service.shard(2).Query();
  ASSERT_NE(reborn, nullptr);
  EXPECT_EQ(new_series->counter_value, reborn->ops_applied);

  // Flush on the reborn constellation still means fully drained.
  ASSERT_TRUE(service.SubmitDelete(11).ok());
  ASSERT_TRUE(service.Flush().ok());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->live_tuples, 239);
  ASSERT_TRUE(service.Stop().ok());
}

// ---------------------------------------------------------------------------
// SnapshotDelta: windowed views over a (before, after) snapshot pair
// ---------------------------------------------------------------------------

TEST(ObsSnapshotDelta, LabelSubsetMatching) {
  EXPECT_TRUE(LabelsMatchSubset({{"shard", "2"}, {"gen", "1"}},
                                {{"shard", "2"}}));
  EXPECT_TRUE(LabelsMatchSubset({{"shard", "2"}}, {}));
  EXPECT_FALSE(LabelsMatchSubset({{"shard", "2"}}, {{"shard", "3"}}));
  EXPECT_FALSE(LabelsMatchSubset({}, {{"shard", "2"}}));
  EXPECT_FALSE(LabelsMatchSubset({{"shard", "2"}},
                                 {{"shard", "2"}, {"gen", "1"}}));
}

TEST(ObsSnapshotDelta, CounterDeltaAndRateAcrossIncarnations) {
  MetricRegistry reg;
  Counter* s0 = reg.GetCounter("fdrms_ops_total", "ops", {{"shard", "0"}});
  Counter* s1 = reg.GetCounter("fdrms_ops_total", "ops", {{"shard", "1"}});
  s0->Increment(10);
  s1->Increment(5);
  RegistrySnapshot before = reg.Snapshot();
  s0->Increment(7);
  // Shard 1 is reborn inside the window: the gen series springs into
  // existence and must contribute its full value.
  Counter* s1g = reg.GetCounter("fdrms_ops_total", "ops",
                                {{"shard", "1"}, {"gen", "1"}});
  s1g->Increment(3);
  RegistrySnapshot after = reg.Snapshot();
  // Pin the window length so the rate assertion is exact.
  before.uptime_seconds = 1.0;
  after.uptime_seconds = 3.0;

  SnapshotDelta delta(before, after);
  EXPECT_EQ(delta.WindowSeconds(), 2.0);
  EXPECT_EQ(delta.CounterDelta("fdrms_ops_total"), 10u);  // 7 + 0 + 3
  EXPECT_EQ(delta.CounterDelta("fdrms_ops_total", {{"shard", "0"}}), 7u);
  EXPECT_EQ(delta.CounterDelta("fdrms_ops_total", {{"shard", "1"}}), 3u);
  EXPECT_EQ(delta.Rate("fdrms_ops_total", {{"shard", "0"}}), 3.5);
  EXPECT_EQ(delta.CounterDelta("absent"), 0u);
}

TEST(ObsSnapshotDelta, GaugeDeltaIgnoresFrozenIncarnations) {
  MetricRegistry reg;
  Gauge* retired = reg.GetGauge("fdrms_writer_busy_seconds", "busy",
                                {{"shard", "2"}});
  Gauge* live = reg.GetGauge("fdrms_writer_busy_seconds", "busy",
                             {{"shard", "2"}, {"gen", "1"}});
  retired->Set(40.0);  // frozen at the old incarnation's lifetime total
  live->Set(1.0);
  RegistrySnapshot before = reg.Snapshot();
  live->Add(0.5);  // only the live incarnation moves
  RegistrySnapshot after = reg.Snapshot();
  SnapshotDelta delta(before, after);
  EXPECT_DOUBLE_EQ(delta.GaugeDelta("fdrms_writer_busy_seconds",
                                    {{"shard", "2"}}),
                   0.5);
}

TEST(ObsSnapshotDelta, GaugeLatestPicksTheHighestGen) {
  MetricRegistry reg;
  reg.GetGauge("fdrms_queue_depth", "depth", {{"shard", "2"}})->Set(900.0);
  reg.GetGauge("fdrms_queue_depth", "depth", {{"shard", "2"}, {"gen", "1"}})
      ->Set(3.0);
  RegistrySnapshot before = reg.Snapshot();
  RegistrySnapshot after = reg.Snapshot();
  SnapshotDelta delta(before, after);
  // The retired incarnation's frozen depth (900) must not shadow the live
  // gen's level reading.
  EXPECT_DOUBLE_EQ(delta.GaugeLatest("fdrms_queue_depth", {{"shard", "2"}}),
                   3.0);
  EXPECT_DOUBLE_EQ(delta.GaugeLatest("absent"), 0.0);
}

TEST(ObsSnapshotDelta, HistQuantileSeesOnlyTheWindow) {
  MetricRegistry reg;
  LatencyHistogram* h =
      reg.GetLatencyHistogram("fdrms_publish_latency_us", "publish",
                              {{"shard", "0"}});
  // History: a thousand fast publications before the window.
  for (int i = 0; i < 1000; ++i) h->Record(2.0);
  RegistrySnapshot before = reg.Snapshot();
  // The window itself: 10 slow ones. A cumulative read would report a
  // fast p99; the windowed diff must see only the slow tail.
  for (int i = 0; i < 10; ++i) h->Record(5e5);
  RegistrySnapshot after = reg.Snapshot();
  SnapshotDelta delta(before, after);
  EXPECT_EQ(delta.HistCountDelta("fdrms_publish_latency_us"), 10u);
  EXPECT_GT(delta.HistQuantile("fdrms_publish_latency_us", 0.99), 1e5);
  // Empty window: quantile reports 0 (distinct from "fast").
  SnapshotDelta still(after, after);
  EXPECT_EQ(still.HistCountDelta("fdrms_publish_latency_us"), 0u);
  EXPECT_EQ(still.HistQuantile("fdrms_publish_latency_us", 0.99), 0.0);
}

TEST(ObsSnapshotDelta, Pow2HistQuantileUsesBucketFloors) {
  MetricRegistry reg;
  Pow2Histogram* h = reg.GetPow2Histogram("fdrms_queue_depth_hist", "depth");
  h->Record(1);
  RegistrySnapshot before = reg.Snapshot();
  for (int i = 0; i < 100; ++i) h->Record(70);  // bucket [64, 128)
  RegistrySnapshot after = reg.Snapshot();
  SnapshotDelta delta(before, after);
  EXPECT_EQ(delta.HistQuantile("fdrms_queue_depth_hist", 0.5), 64.0);
}

TEST(ObsRegistry, SnapshotSynthesizesProcessSeries) {
  MetricRegistry reg;
  reg.GetCounter("fdrms_ops_total", "ops");
  RegistrySnapshot snap = reg.Snapshot();
  const MetricSnapshot* uptime = snap.Find("process_uptime_seconds");
  ASSERT_NE(uptime, nullptr);
  EXPECT_EQ(uptime->type, MetricType::kGauge);
  EXPECT_EQ(uptime->gauge_value, snap.uptime_seconds);
  const MetricSnapshot* series = snap.Find("obs_registry_series");
  ASSERT_NE(series, nullptr);
  EXPECT_EQ(series->gauge_value, 1.0);  // the synthesized pair not counted
  // And they render in the Prometheus exposition with HELP+TYPE.
  const std::string text = reg.PrometheusText();
  EXPECT_NE(text.find("# HELP process_uptime_seconds"), std::string::npos);
  EXPECT_NE(text.find("# TYPE obs_registry_series gauge"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace fdrms
