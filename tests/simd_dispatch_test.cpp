/// Dispatch-matrix equivalence suite: every scoring path must produce
/// *bit-identical* results on every SIMD tier the host supports (scalar is
/// always available; AVX2/AVX-512/NEON when compiled in and the CPU
/// executes them). Also pins the ScoreMatrix alignment contract and the
/// debug-build guard rails (ScoreSubset bounds, stale PointRef access).

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "geometry/point.h"
#include "geometry/sampling.h"
#include "geometry/score_kernel.h"
#include "geometry/simd_dispatch.h"
#include "index/conetree.h"
#include "index/kdtree.h"

namespace fdrms {
namespace {

std::vector<SimdTier> AvailableTiers() {
  std::vector<SimdTier> tiers;
  for (SimdTier tier : {SimdTier::kScalar, SimdTier::kNeon, SimdTier::kAvx2,
                        SimdTier::kAvx512}) {
    if (SimdTierSupported(tier)) tiers.push_back(tier);
  }
  return tiers;
}

/// RAII tier override restoring the previously active tier.
class ScopedSimdTier {
 public:
  explicit ScopedSimdTier(SimdTier tier) : prev_(ActiveSimdTier()) {
    EXPECT_TRUE(SetSimdTier(tier)) << SimdTierName(tier);
  }
  ~ScopedSimdTier() { SetSimdTier(prev_); }

 private:
  SimdTier prev_;
};

TEST(SimdDispatchTest, ScalarAlwaysSupportedAndNamed) {
  EXPECT_TRUE(SimdTierSupported(SimdTier::kScalar));
  EXPECT_STREQ(SimdTierName(SimdTier::kScalar), "scalar");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx2), "avx2");
  EXPECT_STREQ(SimdTierName(SimdTier::kAvx512), "avx512");
  EXPECT_STREQ(SimdTierName(SimdTier::kNeon), "neon");
  // The resolved tier must itself be supported.
  EXPECT_TRUE(SimdTierSupported(ActiveSimdTier()));
  EXPECT_TRUE(SimdTierSupported(BestSupportedSimdTier()));
}

TEST(SimdDispatchTest, SetSimdTierRoundTripsAndRejectsUnsupported) {
  const SimdTier before = ActiveSimdTier();
  for (SimdTier tier : AvailableTiers()) {
    ASSERT_TRUE(SetSimdTier(tier));
    EXPECT_EQ(ActiveSimdTier(), tier);
  }
  for (SimdTier tier : {SimdTier::kNeon, SimdTier::kAvx2, SimdTier::kAvx512}) {
    if (!SimdTierSupported(tier)) {
      SimdTier current = ActiveSimdTier();
      EXPECT_FALSE(SetSimdTier(tier));
      EXPECT_EQ(ActiveSimdTier(), current) << "failed set must not switch";
    }
  }
  ASSERT_TRUE(SetSimdTier(before));
}

// The alignment contract the SIMD tiers lean on: 64-byte-aligned slab
// base, 32-byte-aligned row starts, for every dimensionality — including
// after append-driven regrowth. (The PR 5 slab was a plain std::vector
// whose base is only guaranteed alignof(double); any aligned load on the
// documented promise would have been UB.)
TEST(ScoreMatrixAlignmentTest, RowsAre32ByteAlignedForDims1Through17) {
  Rng rng(11);
  for (int d = 1; d <= 17; ++d) {
    for (int rows : {1, 2, 5, 9}) {
      std::vector<Point> data;
      for (int i = 0; i < rows; ++i) {
        Point p(static_cast<size_t>(d));
        for (double& x : p) x = rng.Uniform();
        data.push_back(std::move(p));
      }
      ScoreMatrix mat(data);
      EXPECT_EQ(mat.stride() % 4, 0u) << "stride not a 32-byte multiple";
      EXPECT_GE(mat.stride(), static_cast<size_t>(d));
      EXPECT_EQ(reinterpret_cast<uintptr_t>(mat.row(0)) %
                    kScoreSlabAlignmentBytes,
                0u)
          << "slab base not 64-byte aligned, d=" << d;
      for (int i = 0; i < rows; ++i) {
        EXPECT_EQ(reinterpret_cast<uintptr_t>(mat.row(i)) % 32, 0u)
            << "row " << i << " misaligned, d=" << d;
      }
    }
  }
}

TEST(ScoreMatrixAlignmentTest, AppendGrowthKeepsAlignmentAndContents) {
  Rng rng(13);
  for (int d : {1, 3, 4, 7, 16, 17}) {
    ScoreMatrix mat(d);
    std::vector<Point> reference;
    for (int i = 0; i < 100; ++i) {  // forces several regrowths
      Point p(static_cast<size_t>(d));
      for (double& x : p) x = rng.Uniform();
      ASSERT_EQ(mat.AppendRow(p), i);
      reference.push_back(std::move(p));
      EXPECT_EQ(reinterpret_cast<uintptr_t>(mat.row(i)) % 32, 0u);
    }
    EXPECT_EQ(reinterpret_cast<uintptr_t>(mat.row(0)) %
                  kScoreSlabAlignmentBytes,
              0u);
    for (int i = 0; i < 100; ++i) {
      for (int k = 0; k < d; ++k) {
        EXPECT_EQ(mat.row(i)[k], reference[static_cast<size_t>(i)]
                                          [static_cast<size_t>(k)]);
      }
    }
  }
}

TEST(ScoreMatrixAlignmentTest, CopyAndMovePreserveAlignmentAndValues) {
  Rng rng(29);
  std::vector<Point> data;
  for (int i = 0; i < 7; ++i) {
    Point p{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    data.push_back(std::move(p));
  }
  ScoreMatrix original(data);
  ScoreMatrix copy(original);
  ASSERT_EQ(copy.rows(), 7);
  EXPECT_NE(copy.row(0), original.row(0)) << "copy must own a fresh slab";
  EXPECT_EQ(reinterpret_cast<uintptr_t>(copy.row(0)) %
                kScoreSlabAlignmentBytes,
            0u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(copy.row(i)) % 32, 0u);
    for (int k = 0; k < 3; ++k) EXPECT_EQ(copy.row(i)[k], original.row(i)[k]);
  }
  const double* slab = original.row(0);
  ScoreMatrix moved(std::move(original));
  EXPECT_EQ(moved.row(0), slab) << "move must transfer the slab";
  EXPECT_EQ(moved.rows(), 7);
}

// Every kernel path on every available tier, bit-identical (EXPECT_EQ on
// doubles, not EXPECT_NEAR) to the scalar Dot reference, over every
// dimensionality 1..17 and row counts around the 2/4/8-row block edges.
TEST(SimdDispatchTest, KernelsBitIdenticalToScalarDotOnEveryTier) {
  Rng rng(41);
  for (SimdTier tier : AvailableTiers()) {
    ScopedSimdTier scoped(tier);
    for (int d = 1; d <= 17; ++d) {
      for (int rows : {1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33}) {
        std::vector<Point> mat_rows;
        for (int i = 0; i < rows; ++i) {
          Point u(static_cast<size_t>(d));
          for (double& x : u) x = rng.Uniform() * 2.0 - 0.5;
          mat_rows.push_back(std::move(u));
        }
        Point q(static_cast<size_t>(d));
        for (double& x : q) x = rng.Uniform() * 3.0 - 1.0;
        ScoreMatrix mat(mat_rows);

        std::vector<double> all;
        mat.ScoreAll(q, &all);
        ASSERT_EQ(all.size(), static_cast<size_t>(rows));
        for (int i = 0; i < rows; ++i) {
          EXPECT_EQ(all[static_cast<size_t>(i)],
                    Dot(mat_rows[static_cast<size_t>(i)], q))
              << SimdTierName(tier) << " ScoreAll d=" << d << " rows=" << rows
              << " i=" << i;
        }

        std::vector<int> subset;
        for (int i = rows - 1; i >= 0; i -= 2) subset.push_back(i);
        std::vector<double> gathered(subset.size());
        mat.ScoreSubset(q, subset, gathered.data());
        for (size_t j = 0; j < subset.size(); ++j) {
          EXPECT_EQ(gathered[j],
                    Dot(mat_rows[static_cast<size_t>(subset[j])], q))
              << SimdTierName(tier) << " ScoreSubset d=" << d
              << " rows=" << rows << " j=" << j;
        }
      }
    }
  }
}

// The raw ScoreBlock API carries no alignment promise and must not read
// the inter-row padding: poison it and run every tier over an unaligned,
// oddly-strided block.
TEST(SimdDispatchTest, RawScoreBlockRespectsStrideAndTailOnEveryTier) {
  const int d = 5;
  const size_t stride = 7;  // deliberately not a 32-byte multiple
  const size_t count = 11;
  std::vector<double> rows(count * stride + 1, -777.0);  // poisoned padding
  for (size_t j = 0; j < count; ++j) {
    for (int k = 0; k < d; ++k) {
      rows[1 + j * stride + static_cast<size_t>(k)] =
          0.25 * static_cast<double>(j + 1) * static_cast<double>(k + 2);
    }
  }
  const double* base = rows.data() + 1;  // knock the base off alignment
  const double q[d] = {1.0, -0.5, 0.25, 2.0, -1.0};
  double expect[count];
  ScoreBlockScalar(base, stride, d, count, q, expect);
  for (SimdTier tier : AvailableTiers()) {
    ScopedSimdTier scoped(tier);
    double out[count];
    ScoreBlock(base, stride, d, count, q, out);
    for (size_t j = 0; j < count; ++j) {
      EXPECT_EQ(out[j], expect[j])
          << SimdTierName(tier) << " row " << j;
    }
  }
}

/// Brute-force helpers for the index-level equivalence runs.
std::vector<ScoredId> BruteTopK(const std::unordered_map<int, Point>& live,
                                const Point& u, int k) {
  std::vector<ScoredId> all;
  for (const auto& [id, p] : live) all.push_back({Dot(u, p), id});
  std::sort(all.begin(), all.end(), BetterScore);
  if (static_cast<int>(all.size()) > k) all.resize(static_cast<size_t>(k));
  return all;
}

// Full kd-tree insert/delete/rebuild churn with TopK + ScoreRange checked
// against brute force on every tier: the SoA leaf scans must agree with
// the heap-scattered reference no matter which kernel runs them.
TEST(SimdDispatchTest, KdTreeQueriesMatchBruteForceOnEveryTier) {
  for (SimdTier tier : AvailableTiers()) {
    ScopedSimdTier scoped(tier);
    Rng rng(1234);
    const int d = 6;
    KdTree tree(d, /*leaf_size=*/4);  // small leaves => deep tree, many scans
    std::unordered_map<int, Point> live;
    int next_id = 0;
    for (int op = 0; op < 900; ++op) {
      const bool do_insert = live.empty() || rng.Uniform() < 0.6;
      if (do_insert) {
        Point p(static_cast<size_t>(d));
        for (double& v : p) v = rng.Uniform();
        ASSERT_TRUE(tree.Insert(next_id, p).ok());
        live.emplace(next_id, p);
        ++next_id;
      } else {
        auto it = live.begin();
        std::advance(it, rng.UniformInt(static_cast<int>(live.size())));
        ASSERT_TRUE(tree.Delete(it->first).ok());
        live.erase(it);
      }
      if (op % 20 == 0 && !live.empty()) {
        Point u = SampleUnitVectorNonneg(d, &rng);
        auto brute = BruteTopK(live, u, 4);
        EXPECT_EQ(tree.TopK(u, 4), brute) << SimdTierName(tier) << " op " << op;
        const double thr = brute.back().score * 0.9;
        std::vector<ScoredId> expect_range;
        for (const auto& [id, p] : live) {
          const double s = Dot(u, p);
          if (s >= thr) expect_range.push_back({s, id});
        }
        std::sort(expect_range.begin(), expect_range.end(), BetterScore);
        EXPECT_EQ(tree.ScoreRange(u, thr), expect_range)
            << SimdTierName(tier) << " op " << op;
      }
    }
    tree.Rebuild();
    if (!live.empty()) {
      Point u = SampleUnitVectorNonneg(d, &rng);
      EXPECT_EQ(tree.TopK(u, 8), BruteTopK(live, u, 8)) << SimdTierName(tier);
    }
  }
}

// Cone-tree FindReached against its scalar brute-force oracle per tier.
TEST(SimdDispatchTest, ConeTreeFindReachedMatchesBruteForceOnEveryTier) {
  for (SimdTier tier : AvailableTiers()) {
    ScopedSimdTier scoped(tier);
    Rng rng(77);
    const int d = 5;
    auto utils = SampleUtilityVectors(300, d, &rng);
    ConeTree cone(utils, /*leaf_size=*/4);
    for (int i = 0; i < cone.size(); ++i) {
      cone.SetThreshold(i, 0.4 + 0.6 * rng.Uniform());
    }
    for (int trial = 0; trial < 50; ++trial) {
      Point p(static_cast<size_t>(d));
      for (double& v : p) v = rng.Uniform() * 1.5;
      EXPECT_EQ(cone.FindReached(p), cone.FindReachedBruteForce(p))
          << SimdTierName(tier) << " trial " << trial;
    }
  }
}

// KdTree::ScoreIds (the gather path TopKMaintainer's eviction loop uses)
// against per-id scalar dots, per tier.
TEST(SimdDispatchTest, KdTreeScoreIdsMatchesScalarOnEveryTier) {
  Rng rng(55);
  const int d = 7;
  KdTree tree(d);
  std::unordered_map<int, Point> live;
  for (int i = 0; i < 200; ++i) {
    Point p(static_cast<size_t>(d));
    for (double& v : p) v = rng.Uniform();
    ASSERT_TRUE(tree.Insert(i, p).ok());
    live.emplace(i, p);
  }
  for (int i = 0; i < 200; i += 3) {
    ASSERT_TRUE(tree.Delete(i).ok());
    live.erase(i);
  }
  std::vector<int> ids;
  for (const auto& [id, p] : live) ids.push_back(id);
  Point u = SampleUnitVectorNonneg(d, &rng);
  for (SimdTier tier : AvailableTiers()) {
    ScopedSimdTier scoped(tier);
    std::vector<double> scores(ids.size());
    tree.ScoreIds(u.data(), ids, scores.data());
    for (size_t j = 0; j < ids.size(); ++j) {
      EXPECT_EQ(scores[j], Dot(u, live.at(ids[j])))
          << SimdTierName(tier) << " id " << ids[j];
    }
  }
}

// GetPointRef stays valid until the next mutation and reflects the stored
// coordinates exactly.
TEST(KdTreePointRefTest, RefMatchesStoredPointAcrossRebuild) {
  KdTree tree(3);
  ASSERT_TRUE(tree.Insert(5, {0.1, 0.2, 0.3}).ok());
  ASSERT_TRUE(tree.Insert(9, {0.9, 0.8, 0.7}).ok());
  auto ref = tree.GetPointRef(5);
  EXPECT_EQ(ref.dim(), 3);
  EXPECT_EQ(ref[0], 0.1);
  EXPECT_EQ(ref[2], 0.3);
  tree.Rebuild();
  // Re-acquired after the rebuild: fine.
  auto ref2 = tree.GetPointRef(9);
  EXPECT_EQ(ref2[1], 0.8);
  EXPECT_EQ(tree.GetPoint(5), (Point{0.1, 0.2, 0.3}));
}

#if GTEST_HAS_DEATH_TEST && !defined(NDEBUG)

// Debug lane: a bad ScoreSubset index must die on the DCHECK instead of
// silently reading outside the slab.
TEST(ScoreKernelDeathTest, ScoreSubsetOutOfRangeIndexDies) {
  ScoreMatrix mat(std::vector<Point>{{1.0, 2.0}, {3.0, 4.0}});
  Point q{1.0, 1.0};
  double out[1];
  EXPECT_DEATH(mat.ScoreSubset(q, {2}, out), "ScoreSubset index");
  EXPECT_DEATH(mat.ScoreSubset(q, {-1}, out), "ScoreSubset index");
}

// Debug lane: dimensionless rows are a construction error, not a silent
// zero-stride matrix.
TEST(ScoreKernelDeathTest, ZeroDimRowsDieAtConstruction) {
  EXPECT_DEATH(ScoreMatrix{std::vector<Point>{Point{}}},
               "at least one coordinate");
  EXPECT_DEATH(ScoreMatrix{0}, "dim > 0");
}

// Debug lane: holding a PointRef across a mutation is a use-after-
// invalidate; the generation check must catch the access.
TEST(KdTreePointRefDeathTest, StaleRefAccessDies) {
  KdTree tree(2);
  ASSERT_TRUE(tree.Insert(1, {0.5, 0.5}).ok());
  auto ref = tree.GetPointRef(1);
  EXPECT_EQ(ref[0], 0.5);  // fresh: fine
  ASSERT_TRUE(tree.Insert(2, {0.25, 0.75}).ok());
  EXPECT_DEATH((void)ref.data(), "stale");
  auto ref2 = tree.GetPointRef(1);
  ASSERT_TRUE(tree.Delete(2).ok());
  EXPECT_DEATH((void)ref2[0], "stale");
}

#endif  // GTEST_HAS_DEATH_TEST && !defined(NDEBUG)

}  // namespace
}  // namespace fdrms
