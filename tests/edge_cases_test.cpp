/// Edge-case and failure-injection tests across modules: tiny inputs,
/// degenerate geometry, duplicate data, budget extremes.

#include <gtest/gtest.h>

#include "baselines/exact2d.h"
#include "baselines/greedy.h"
#include "core/fdrms.h"
#include "data/generators.h"
#include "index/kdtree.h"
#include "setcover/dynamic_set_cover.h"
#include "skyline/skyline.h"
#include "topk/topk_maintainer.h"

namespace fdrms {
namespace {

TEST(EdgeCaseTest, KdTreeManyDuplicatePoints) {
  KdTree tree(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Insert(i, {0.5, 0.5, 0.5}).ok());
  }
  auto top = tree.TopK({1.0, 0.0, 0.0}, 7);
  ASSERT_EQ(top.size(), 7u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(top[i].id, i);  // id tie-break
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(tree.Delete(i).ok());
  EXPECT_EQ(tree.size(), 0);
  EXPECT_TRUE(tree.TopK({1.0, 0.0, 0.0}, 3).empty());
}

TEST(EdgeCaseTest, KdTreeInterleavedChurnOnSameId) {
  KdTree tree(2);
  for (int round = 0; round < 50; ++round) {
    ASSERT_TRUE(tree.Insert(1, {0.1 * (round % 10), 0.5}).ok());
    ASSERT_TRUE(tree.Delete(1).ok());
  }
  EXPECT_EQ(tree.size(), 0);
  ASSERT_TRUE(tree.Insert(1, {0.9, 0.9}).ok());
  EXPECT_EQ(tree.TopK({1.0, 1.0}, 1)[0].id, 1);
}

TEST(EdgeCaseTest, TopKMaintainerAllIdenticalScores) {
  std::vector<Point> utils{{1.0, 0.0}};
  TopKMaintainer m(2, /*k=*/3, /*eps=*/0.0, utils);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(m.Insert(i, {0.5, static_cast<double>(i)}, nullptr).ok());
  }
  // All tie at 0.5 under u = (1, 0): Φ contains everyone (score == ω_k).
  EXPECT_EQ(m.ApproxTopK(0).size(), 6u);
  EXPECT_TRUE(m.ValidateAgainstBruteForce().ok());
  // Deleting a top-k member keeps the structure exact.
  ASSERT_TRUE(m.Delete(0, nullptr).ok());
  EXPECT_TRUE(m.ValidateAgainstBruteForce().ok());
}

TEST(EdgeCaseTest, TopKMaintainerZeroPoint) {
  std::vector<Point> utils{{0.6, 0.8}};
  TopKMaintainer m(2, 1, 0.1, utils);
  ASSERT_TRUE(m.Insert(0, {0.0, 0.0}, nullptr).ok());
  EXPECT_EQ(m.ApproxTopK(0).size(), 1u);
  ASSERT_TRUE(m.Insert(1, {0.9, 0.9}, nullptr).ok());
  EXPECT_TRUE(m.ValidateAgainstBruteForce().ok());
}

TEST(EdgeCaseTest, FdRmsWithBudgetOne) {
  PointSet ps = GenerateIndep(100, 3, 1);
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 1;
  opt.eps = 0.05;
  opt.max_utilities = 64;
  FdRms algo(3, opt);
  std::vector<std::pair<int, Point>> tuples;
  for (int i = 0; i < ps.size(); ++i) tuples.emplace_back(i, ps.Get(i));
  ASSERT_TRUE(algo.Initialize(tuples).ok());
  EXPECT_LE(algo.Result().size(), 1u);
  ASSERT_TRUE(algo.Validate().ok());
}

TEST(EdgeCaseTest, FdRmsInitializeOnEmptyDatabase) {
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 5;
  opt.max_utilities = 32;
  FdRms algo(2, opt);
  ASSERT_TRUE(algo.Initialize({}).ok());
  EXPECT_TRUE(algo.Result().empty());
  ASSERT_TRUE(algo.Insert(0, {0.5, 0.5}).ok());
  EXPECT_EQ(algo.Result().size(), 1u);
  ASSERT_TRUE(algo.Validate().ok());
}

TEST(EdgeCaseTest, FdRmsDuplicateInsertReported) {
  FdRmsOptions opt;
  opt.k = 1;
  opt.r = 3;
  opt.max_utilities = 32;
  FdRms algo(2, opt);
  ASSERT_TRUE(algo.Initialize({{0, {0.5, 0.5}}}).ok());
  EXPECT_EQ(algo.Insert(0, {0.6, 0.6}).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(algo.Delete(99).code(), StatusCode::kNotFound);
  // Structure intact after rejected operations.
  ASSERT_TRUE(algo.Validate().ok());
}

TEST(EdgeCaseTest, DynamicSetCoverRepeatedIdempotentOps) {
  DynamicSetCover cover(4);
  cover.AddMembership(0, 1);
  cover.AddMembership(0, 1);  // duplicate
  cover.InitializeGreedy({0});
  cover.AddToUniverse(0);     // already in universe
  cover.RemoveFromUniverse(3);  // never in universe
  cover.RemoveMembership(2, 9);  // nonexistent membership
  cover.RemoveSet(12345);        // nonexistent set
  ASSERT_TRUE(cover.CheckInvariants().ok());
  EXPECT_EQ(cover.AssignmentOf(0), 1);
}

TEST(EdgeCaseTest, SkylineSinglePointAndClear) {
  DynamicSkyline sky(4);
  bool changed = false;
  ASSERT_TRUE(sky.Insert(7, {0.1, 0.2, 0.3, 0.4}, &changed).ok());
  EXPECT_TRUE(changed);
  EXPECT_TRUE(sky.IsOnSkyline(7));
  ASSERT_TRUE(sky.Delete(7, &changed).ok());
  EXPECT_TRUE(changed);
  EXPECT_EQ(sky.skyline_size(), 0);
  EXPECT_EQ(sky.size(), 0);
}

TEST(EdgeCaseTest, Exact2dVerticalAndHorizontalExtremes) {
  // Two extreme points: r=2 must reach regret 0.
  Database db;
  db.dim = 2;
  db.ids = {1, 2, 3};
  db.points = {{1.0, 0.0}, {0.0, 1.0}, {0.4, 0.4}};
  Exact2dRms exact;
  EXPECT_NEAR(exact.OptimalRegret(db, 3), 0.0, 1e-6);
  Rng rng(1);
  auto q = exact.Compute(db, 1, 2, &rng);
  EXPECT_EQ(q.size(), 2u);
}

TEST(EdgeCaseTest, Exact2dDuplicateSlopes) {
  // Points sharing the same x - y difference exercise the envelope's
  // duplicate-slope dedup.
  Database db;
  db.dim = 2;
  db.ids = {1, 2, 3, 4};
  db.points = {{0.6, 0.2}, {0.8, 0.4}, {0.3, 0.7}, {0.5, 0.9}};
  Exact2dRms exact;
  double opt_r1 = exact.OptimalRegret(db, 1);
  double opt_r2 = exact.OptimalRegret(db, 2);
  EXPECT_GE(opt_r1, opt_r2 - 1e-9);
  EXPECT_NEAR(opt_r2, 0.0, 1e-6);  // {p2, p4} dominate everything
}

TEST(EdgeCaseTest, GreedyBudgetLargerThanSkyline) {
  Database db;
  db.dim = 2;
  db.ids = {1, 2, 3};
  db.points = {{1.0, 0.0}, {0.0, 1.0}, {0.6, 0.6}};
  Rng rng(2);
  GreedyRms greedy;
  auto q = greedy.Compute(db, 1, 50, &rng);
  // Stops once regret hits zero; never exceeds the skyline size.
  EXPECT_LE(q.size(), 3u);
  EXPECT_GE(q.size(), 2u);
}

TEST(EdgeCaseTest, GeneratorsTinyN) {
  for (const auto& spec : PaperDatasets()) {
    auto res = GenerateByName(spec.name, 1, 9);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.value().size(), 1);
  }
}

}  // namespace
}  // namespace fdrms
