#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "data/generators.h"
#include "eval/service_driver.h"
#include "eval/workload.h"
#include "geometry/sampling.h"
#include "shard/sharded_service.h"

// All suites here are named Shard* on purpose: the `tsan` CMake test preset
// (and the CI ThreadSanitizer job) selects them with the regex
// ^(Serve|Shard).

namespace fdrms {
namespace {

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps, int count) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < count; ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

/// Replays `ops` sequentially on a fresh FdRms with the service's per-op
/// semantics (rejected operations are skipped, the rest keep going).
std::unique_ptr<FdRms> SequentialReplay(
    int dim, const FdRmsOptions& opt,
    const std::vector<std::pair<int, Point>>& initial,
    const std::vector<FdRms::BatchOp>& ops) {
  auto algo = std::make_unique<FdRms>(dim, opt);
  EXPECT_TRUE(algo->Initialize(initial).ok());
  for (const FdRms::BatchOp& op : ops) {
    switch (op.kind) {
      case FdRms::BatchOp::Kind::kInsert:
        (void)algo->Insert(op.id, op.point);
        break;
      case FdRms::BatchOp::Kind::kDelete:
        (void)algo->Delete(op.id);
        break;
      case FdRms::BatchOp::Kind::kUpdate:
        (void)algo->Update(op.id, op.point);
        break;
    }
  }
  return algo;
}

TEST(ShardRouterTest, HashRouterIsDeterministicAndInRange) {
  HashShardRouter a(4), b(4);
  EXPECT_EQ(a.num_shards(), 4);
  for (int id : {-7, 0, 1, 2, 41, 999, 123456789}) {
    int shard = a.Route(id);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, b.Route(id)) << "id " << id;
    EXPECT_EQ(shard, a.Route(id)) << "id " << id;  // stable across calls
  }
}

TEST(ShardRouterTest, HashRouterBalancesSequentialIds) {
  // Sequential ids are the adversarial-but-typical case (auto-increment
  // keys); the finalizer hash must spread them evenly.
  const int kShards = 4;
  const int kIds = 20000;
  HashShardRouter router(kShards);
  std::vector<int> counts(kShards, 0);
  for (int id = 0; id < kIds; ++id) ++counts[router.Route(id)];
  for (int s = 0; s < kShards; ++s) {
    EXPECT_GT(counts[s], kIds / kShards - kIds / 10) << "shard " << s;
    EXPECT_LT(counts[s], kIds / kShards + kIds / 10) << "shard " << s;
  }
}

TEST(ShardRouterTest, SingleShardRoutesEverythingToZero) {
  HashShardRouter router(1);
  for (int id = 0; id < 100; ++id) EXPECT_EQ(router.Route(id), 0);
}

TEST(ShardedServiceTest, StartPublishesMergedVersionZeroVector) {
  PointSet ps = GenerateIndep(240, 3, 11);
  ShardedServiceOptions sopt;
  sopt.num_shards = 3;
  sopt.shard.algo.r = 6;
  sopt.shard.algo.max_utilities = 128;
  ShardedFdRmsService service(3, sopt);
  EXPECT_EQ(service.Query(), nullptr);  // nothing published pre-Start
  ASSERT_TRUE(service.Start(AsTuples(ps, 240)).ok());
  EXPECT_TRUE(service.running());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->versions, (std::vector<uint64_t>{0, 0, 0}));
  EXPECT_EQ(merged->ops_applied, 0u);
  EXPECT_EQ(merged->live_tuples, 240);
  EXPECT_EQ(merged->union_size, merged->ids.size());
  EXPECT_FALSE(merged->reduced);
  EXPECT_LE(static_cast<int>(merged->ids.size()), 3 * 6);
  EXPECT_EQ(merged->ids.size(), merged->points.size());
  EXPECT_TRUE(std::is_sorted(merged->ids.begin(), merged->ids.end()));
  EXPECT_EQ(std::adjacent_find(merged->ids.begin(), merged->ids.end()),
            merged->ids.end());
  ASSERT_EQ(merged->shards.size(), 3u);
  int live_sum = 0;
  for (const auto& part : merged->shards) {
    ASSERT_NE(part, nullptr);
    live_sum += part->live_tuples;
  }
  EXPECT_EQ(live_sum, 240);
  EXPECT_GE(service.publications(), 3u);  // one version-0 publication each
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_FALSE(service.running());
}

TEST(ShardedServiceTest, LifecycleFailuresSurfaceAsStatuses) {
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.max_utilities = 32;
  ShardedFdRmsService service(2, sopt);
  EXPECT_EQ(service.SubmitDelete(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Stop().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Start({{0, {0.3, 0.4}}, {1, {0.5, 0.2}}}).ok());
  EXPECT_EQ(service.Start({}).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_TRUE(service.Stop().ok());  // idempotent, like the per-shard Stop
  EXPECT_EQ(service.SubmitInsert(9, {0.1, 0.1}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ShardedServiceTest, FailedStartTearsTheConstellationDownAndAllowsRetry) {
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.max_utilities = 32;
  ShardedFdRmsService service(2, sopt);
  // A duplicate id makes the owning shard's bulk load fail.
  Status st = service.Start({{7, {0.3, 0.4}}, {7, {0.5, 0.2}}});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(service.Query(), nullptr);  // no merged view over a partial start
  EXPECT_FALSE(service.running());
  // The constellation was rebuilt: a corrected Start succeeds.
  ASSERT_TRUE(service.Start({{7, {0.3, 0.4}}, {8, {0.5, 0.2}}}).ok());
  EXPECT_TRUE(service.running());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->live_tuples, 2);
  ASSERT_TRUE(service.Stop().ok());
}

/// A router that sends id 42 out of range — models a buggy custom router.
class MisroutingRouter final : public ShardRouter {
 public:
  int num_shards() const override { return 2; }
  int Route(int id) const override { return id == 42 ? 2 : id % 2; }
  const char* name() const override { return "misrouting"; }
};

TEST(ShardedServiceTest, OutOfRangeRoutingFailsStartButStaysRetryable) {
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.max_utilities = 32;
  ShardedFdRmsService service(2, sopt, std::make_unique<MisroutingRouter>());
  EXPECT_EQ(service.Start({{42, {0.5, 0.5}}}).code(), StatusCode::kInternal);
  EXPECT_FALSE(service.running());
  // The misroute did not latch the lifecycle: a clean P_0 starts fine, and
  // a misrouted submit surfaces as kInternal without touching any shard.
  ASSERT_TRUE(service.Start({{1, {0.3, 0.4}}, {2, {0.5, 0.2}}}).ok());
  EXPECT_EQ(service.SubmitInsert(42, {0.1, 0.2}).code(),
            StatusCode::kInternal);
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ShardedServiceTest, RoutesEveryOperationToItsOwningShard) {
  PointSet ps = GenerateIndep(300, 3, 12);
  ShardedServiceOptions sopt;
  sopt.num_shards = 4;
  sopt.shard.algo.r = 5;
  sopt.shard.algo.max_utilities = 64;
  sopt.shard.record_journal = true;
  ShardedFdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 200)).ok());
  for (int i = 200; i < 300; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(service.SubmitDelete(i).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  ASSERT_TRUE(service.Stop().ok());
  size_t journaled = 0;
  for (int s = 0; s < service.num_shards(); ++s) {
    for (const FdRms::BatchOp& op : service.shard(s).journal()) {
      EXPECT_EQ(service.router().Route(op.id), s)
          << "id " << op.id << " journaled on shard " << s;
    }
    journaled += service.shard(s).journal().size();
  }
  EXPECT_EQ(journaled, 160u);
}

// The tentpole correctness scenario: concurrent submitters churn the
// sharded service; afterwards every shard must equal a sequential replay of
// its own journal, and the merged view must equal the union of the shard
// results.
TEST(ShardedServiceTest, MergedMatchesPerShardJournalReplay) {
  PointSet ps = GenerateAntiCor(240, 3, 13);
  Workload wl(&ps, 37);
  ShardedServiceOptions sopt;
  sopt.num_shards = 3;
  sopt.shard.algo.r = 8;
  sopt.shard.algo.max_utilities = 128;
  sopt.shard.max_batch = 8;
  sopt.shard.record_journal = true;
  ShardedFdRmsService service(3, sopt);
  std::vector<std::pair<int, Point>> initial;
  for (int id : wl.initial_ids()) initial.emplace_back(id, ps.Get(id));
  ASSERT_TRUE(service.Start(initial).ok());

  const auto& ops = wl.operations();
  std::vector<std::thread> submitters;
  for (int t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < ops.size(); i += 2) {
        Status st = ops[i].is_insert
                        ? service.SubmitInsert(ops[i].id, ps.Get(ops[i].id))
                        : service.SubmitDelete(ops[i].id);
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  ASSERT_TRUE(service.Flush().ok());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  ASSERT_TRUE(service.Stop().ok());

  // Every submitted op was consumed exactly once, on exactly one shard.
  EXPECT_EQ(merged->ops_applied + merged->ops_rejected, ops.size());

  std::vector<int> union_of_replays;
  for (int s = 0; s < service.num_shards(); ++s) {
    std::vector<std::pair<int, Point>> shard_initial;
    for (const auto& [id, point] : initial) {
      if (service.router().Route(id) == s) shard_initial.emplace_back(id, point);
    }
    auto replay = SequentialReplay(3, sopt.shard.algo, shard_initial,
                                   service.shard(s).journal());
    EXPECT_EQ(merged->shards[s]->ids, replay->Result()) << "shard " << s;
    EXPECT_EQ(merged->shards[s]->sample_size_m, replay->current_m());
    EXPECT_EQ(merged->shards[s]->live_tuples, replay->size());
    EXPECT_EQ(service.shard(s).algorithm().Result(), replay->Result());
    ASSERT_TRUE(service.shard(s).algorithm().Validate().ok());
    for (int id : replay->Result()) union_of_replays.push_back(id);
  }
  std::sort(union_of_replays.begin(), union_of_replays.end());
  union_of_replays.erase(
      std::unique(union_of_replays.begin(), union_of_replays.end()),
      union_of_replays.end());
  EXPECT_EQ(merged->ids, union_of_replays);
}

// The merged result's quality guarantee: with a shared utility-sampling
// seed, every utility in the shared prefix (index < min over shards of m_s)
// is covered by the owning shard's (1-ε) bound, so for k=1 the merged set
// meets the same regret-ratio oracle bound fdrms_test.cpp checks for a
// single instance — omega recomputed brute-force over the *global* live
// set. A single-instance run over the identical stream must not beat the
// merged result by more than noise on sampled directions.
TEST(ShardedServiceTest, MergedRegretMeetsEpsBoundOnSharedUtilityPrefix) {
  const double eps = 0.05;
  PointSet ps = GenerateIndep(360, 3, 14);
  Workload wl(&ps, 41);
  ShardedServiceOptions sopt;
  sopt.num_shards = 3;
  sopt.shard.algo.k = 1;
  sopt.shard.algo.r = 8;
  sopt.shard.algo.eps = eps;
  sopt.shard.algo.max_utilities = 256;
  ShardedFdRmsService service(3, sopt);
  std::vector<std::pair<int, Point>> initial;
  for (int id : wl.initial_ids()) initial.emplace_back(id, ps.Get(id));
  ASSERT_TRUE(service.Start(initial).ok());
  // One submitter keeps the stream ordered: no rejects, so the final live
  // set is exactly the workload's definition.
  for (const Operation& op : wl.operations()) {
    Status st = op.is_insert ? service.SubmitInsert(op.id, ps.Get(op.id))
                             : service.SubmitDelete(op.id);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  ASSERT_TRUE(service.Flush().ok());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_EQ(merged->ops_rejected, 0u);

  const std::vector<int> live =
      wl.LiveIdsAfter(static_cast<int>(wl.operations().size()) - 1);
  EXPECT_EQ(static_cast<int>(live.size()), merged->live_tuples);

  // All shards drew the same utility sequence (shared seed).
  const std::vector<Point>& utilities =
      service.shard(0).algorithm().topk().utilities();
  ASSERT_GE(merged->min_sample_size_m, 1);
  for (int s = 1; s < service.num_shards(); ++s) {
    const std::vector<Point>& other =
        service.shard(s).algorithm().topk().utilities();
    for (int i = 0; i < merged->min_sample_size_m; ++i) {
      ASSERT_EQ(utilities[i], other[i]) << "shard " << s << " utility " << i;
    }
  }

  for (int i = 0; i < merged->min_sample_size_m; ++i) {
    const Point& u = utilities[i];
    double omega = 0.0;
    for (int id : live) omega = std::max(omega, Dot(u, ps.Get(id)));
    double best = 0.0;
    for (int id : merged->ids) best = std::max(best, Dot(u, ps.Get(id)));
    EXPECT_GE(best, (1.0 - eps) * omega - 1e-9)
        << "utility " << i << ": merged regret ratio " << 1.0 - best / omega
        << " exceeds eps=" << eps;
  }

  // Quality parity with one instance maintaining the whole tuple space.
  std::vector<FdRms::BatchOp> stream;
  for (const Operation& op : wl.operations()) {
    stream.push_back({op.is_insert ? FdRms::BatchOp::Kind::kInsert
                                   : FdRms::BatchOp::Kind::kDelete,
                      op.id, op.is_insert ? ps.Get(op.id) : Point{}});
  }
  auto single = SequentialReplay(3, sopt.shard.algo, initial, stream);
  auto regret_of = [&](const std::vector<int>& q) {
    Rng eval_rng(321);
    double worst = 0.0;
    for (int s = 0; s < 2000; ++s) {
      Point u = SampleUnitVectorNonneg(3, &eval_rng);
      double omega = 0.0;
      for (int id : live) omega = std::max(omega, Dot(u, ps.Get(id)));
      double best = 0.0;
      for (int id : q) best = std::max(best, Dot(u, ps.Get(id)));
      if (omega > 0.0) worst = std::max(worst, 1.0 - best / omega);
    }
    return worst;
  };
  EXPECT_LE(regret_of(merged->ids), regret_of(single->Result()) + 0.05);
}

TEST(ShardedServiceTest, DrainStopAppliesEverythingQueuedOnEveryShard) {
  PointSet ps = GenerateIndep(200, 2, 15);
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.r = 5;
  sopt.shard.algo.max_utilities = 64;
  sopt.shard.max_batch = 4;
  sopt.shard.batch_delay_us_for_test = 300;
  ShardedFdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 100)).ok());
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  ASSERT_TRUE(service.Stop(ShardedFdRmsService::StopPolicy::kDrain).ok());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->ops_applied, 100u);
  EXPECT_EQ(merged->live_tuples, 200);
  EXPECT_EQ(service.ops_dropped(), 0u);
}

TEST(ShardedServiceTest, AbortStopDropsBacklogsAcrossShards) {
  PointSet ps = GenerateIndep(300, 2, 16);
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.r = 5;
  sopt.shard.algo.max_utilities = 64;
  sopt.shard.max_batch = 1;
  sopt.shard.batch_delay_us_for_test = 3000;
  ShardedFdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 100)).ok());
  for (int i = 100; i < 300; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  ASSERT_TRUE(service.Stop(ShardedFdRmsService::StopPolicy::kAbort).ok());
  // 200 ops at >= 3ms each would take >= 600ms; submission took far less,
  // so both shards must have found backlogs to drop.
  EXPECT_GT(service.ops_dropped(), 0u);
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->ops_applied + merged->ops_rejected + service.ops_dropped(),
            200u);
  EXPECT_EQ(service.Flush().code(), StatusCode::kFailedPrecondition);
  // Each shard still published a consistent prefix of its own stream.
  EXPECT_EQ(merged->live_tuples, 100 + static_cast<int>(merged->ops_applied));
}

TEST(ShardedServiceTest, TopUpReCoverRespectsGlobalBudget) {
  PointSet ps = GenerateAntiCor(400, 3, 18);
  ShardedServiceOptions sopt;
  sopt.num_shards = 4;
  sopt.shard.algo.r = 6;
  sopt.shard.algo.max_utilities = 128;
  sopt.merged_budget_r = 8;
  sopt.merge_directions = 256;
  ShardedFdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 400)).ok());
  auto merged = service.Query();
  ASSERT_NE(merged, nullptr);
  ASSERT_GT(merged->union_size, 8u)
      << "anti-correlated shards should fill their budgets";
  EXPECT_TRUE(merged->reduced);
  EXPECT_LE(static_cast<int>(merged->ids.size()), 8);
  EXPECT_GE(merged->ids.size(), 1u);
  EXPECT_TRUE(std::is_sorted(merged->ids.begin(), merged->ids.end()));
  // The re-covered result is a subset of the union of shard results.
  std::unordered_set<int> union_ids;
  for (const auto& part : merged->shards) {
    union_ids.insert(part->ids.begin(), part->ids.end());
  }
  for (size_t i = 0; i < merged->ids.size(); ++i) {
    EXPECT_TRUE(union_ids.count(merged->ids[i])) << merged->ids[i];
    EXPECT_EQ(merged->points[i], ps.Get(merged->ids[i]));
  }
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ShardedServiceTest, QueryCachesMergeUntilAShardPublishes) {
  PointSet ps = GenerateIndep(150, 2, 19);
  ShardedServiceOptions sopt;
  sopt.num_shards = 2;
  sopt.shard.algo.r = 4;
  sopt.shard.algo.max_utilities = 64;
  ShardedFdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 100)).ok());
  auto a = service.Query();
  auto b = service.Query();
  EXPECT_EQ(a.get(), b.get());  // no publication in between: cache hit
  ASSERT_TRUE(service.SubmitInsert(120, ps.Get(120)).ok());
  ASSERT_TRUE(service.Flush().ok());
  auto c = service.Query();
  EXPECT_NE(a.get(), c.get());
  EXPECT_GE(c->versions[service.router().Route(120)], 1u);
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ShardedDriverTest, ShardedLoadRunDrainsWorkloadAndStaysConsistent) {
  PointSet ps = GenerateIndep(240, 3, 21);
  Workload wl(&ps, 19);
  ShardedLoadOptions lopt;
  lopt.num_readers = 2;
  lopt.num_submitters = 2;
  lopt.service.num_shards = 2;
  lopt.service.shard.algo.r = 6;
  lopt.service.shard.algo.max_utilities = 128;
  lopt.service.shard.max_batch = 16;
  ShardedLoadResult res = RunShardedLoad(wl, lopt);
  EXPECT_TRUE(res.consistent);
  EXPECT_EQ(res.ops_submitted, wl.operations().size());
  EXPECT_EQ(res.ops_applied + res.ops_rejected, res.ops_submitted);
  EXPECT_EQ(res.submit_failures, 0u);
  EXPECT_GT(res.queries, 0u);
  EXPECT_GT(res.batches, 0u);
  EXPECT_GT(res.update_throughput, 0.0);
  EXPECT_GT(res.update_capacity, 0.0);
  EXPECT_GT(res.query_throughput, 0.0);
  EXPECT_LE(res.final_result_size, 2 * 6);
  ASSERT_EQ(res.per_shard_applied.size(), 2u);
  EXPECT_EQ(res.per_shard_applied[0] + res.per_shard_applied[1],
            res.ops_applied);
  ASSERT_EQ(res.per_shard_busy_seconds.size(), 2u);
  ASSERT_EQ(res.per_shard_mean_staleness.size(), 2u);
  ASSERT_EQ(res.final_versions.size(), 2u);
  EXPECT_GE(res.max_staleness_ops, res.mean_staleness_ops);
  EXPECT_GE(res.publish_p99_us, res.publish_p50_us);
}

}  // namespace
}  // namespace fdrms
