#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/rng.h"
#include "core/fdrms.h"
#include "data/generators.h"
#include "geometry/sampling.h"

namespace fdrms {
namespace {

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < ps.size(); ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

FdRmsOptions Options(int k, int r, double eps = 0.05, int M = 256,
                     uint64_t seed = 7) {
  FdRmsOptions opt;
  opt.k = k;
  opt.r = r;
  opt.eps = eps;
  opt.max_utilities = M;
  opt.seed = seed;
  return opt;
}

TEST(FdRmsTest, InitializeRespectsBudget) {
  PointSet ps = GenerateIndep(500, 3, 1);
  FdRms algo(3, Options(1, 10));
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  std::vector<int> q = algo.Result();
  EXPECT_LE(static_cast<int>(q.size()), 10);
  EXPECT_GE(static_cast<int>(q.size()), 1);
  EXPECT_TRUE(algo.Validate().ok());
}

TEST(FdRmsTest, DoubleInitializeFails) {
  PointSet ps = GenerateIndep(50, 2, 2);
  FdRms algo(2, Options(1, 5));
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  EXPECT_EQ(algo.Initialize(AsTuples(ps)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FdRmsTest, MutationBeforeInitializeFails) {
  FdRms algo(2, Options(1, 5));
  EXPECT_EQ(algo.Insert(0, {0.5, 0.5}).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(algo.Delete(0).code(), StatusCode::kFailedPrecondition);
}

TEST(FdRmsTest, ResultCoversEveryUniverseUtility) {
  // Feasibility certificate: for every universe utility, some result tuple
  // is an ε-approximate top-k tuple.
  PointSet ps = GenerateAntiCor(400, 4, 3);
  FdRms algo(4, Options(1, 15));
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  std::vector<int> q = algo.Result();
  std::unordered_set<int> q_set(q.begin(), q.end());
  for (int u = 0; u < algo.current_m(); ++u) {
    const auto& phi = algo.topk().ApproxTopK(u);
    bool covered = false;
    for (int id : phi) {
      if (q_set.count(id) > 0) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "utility " << u << " not covered";
  }
}

TEST(FdRmsTest, InsertionsAndDeletionsKeepInvariants) {
  Rng rng(11);
  PointSet ps = GenerateIndep(600, 3, 4);
  std::vector<std::pair<int, Point>> tuples = AsTuples(ps);
  // Start with the first 300 tuples.
  std::vector<std::pair<int, Point>> initial(tuples.begin(),
                                             tuples.begin() + 300);
  FdRms algo(3, Options(1, 12));
  ASSERT_TRUE(algo.Initialize(initial).ok());
  std::unordered_set<int> live;
  for (int i = 0; i < 300; ++i) live.insert(i);
  for (int i = 300; i < 600; ++i) {
    ASSERT_TRUE(algo.Insert(i, ps.Get(i)).ok());
    live.insert(i);
    if (i % 3 == 0) {
      int victim = *live.begin();
      ASSERT_TRUE(algo.Delete(victim).ok());
      live.erase(victim);
    }
    if (i % 60 == 0) {
      ASSERT_TRUE(algo.Validate().ok()) << "at insert " << i;
      EXPECT_LE(static_cast<int>(algo.Result().size()), 12);
    }
  }
  ASSERT_TRUE(algo.Validate().ok());
}

TEST(FdRmsTest, DeletingResultMembersStillWorks) {
  PointSet ps = GenerateIndep(300, 3, 5);
  FdRms algo(3, Options(1, 8));
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  // Repeatedly delete the entire current result; the algorithm must heal.
  std::unordered_set<int> deleted;
  for (int round = 0; round < 10; ++round) {
    std::vector<int> q = algo.Result();
    ASSERT_FALSE(q.empty());
    for (int id : q) {
      ASSERT_TRUE(algo.Delete(id).ok());
      deleted.insert(id);
    }
    ASSERT_TRUE(algo.Validate().ok()) << "round " << round;
  }
  EXPECT_GE(deleted.size(), 40u);
}

TEST(FdRmsTest, DeleteDownToEmptyAndRebuild) {
  PointSet ps = GenerateIndep(60, 2, 6);
  FdRms algo(2, Options(1, 5, 0.05, 64));
  ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(algo.Delete(i).ok());
  }
  EXPECT_TRUE(algo.Result().empty());
  EXPECT_EQ(algo.size(), 0);
  // Insert fresh tuples into the emptied structure.
  Rng rng(8);
  for (int i = 100; i < 160; ++i) {
    ASSERT_TRUE(algo.Insert(i, {rng.Uniform(), rng.Uniform()}).ok());
  }
  ASSERT_TRUE(algo.Validate().ok());
  EXPECT_FALSE(algo.Result().empty());
}

TEST(FdRmsTest, KGreaterThanOneMaintainsInvariants) {
  PointSet ps = GenerateAntiCor(400, 3, 7);
  for (int k : {2, 3, 5}) {
    FdRms algo(3, Options(k, 10));
    ASSERT_TRUE(algo.Initialize(AsTuples(ps)).ok());
    ASSERT_TRUE(algo.Validate().ok()) << "k=" << k;
    for (int i = 400; i < 450; ++i) {
      ASSERT_TRUE(algo.Insert(i, {0.3, 0.9, 0.5}).ok());
      ASSERT_TRUE(algo.Delete(i - 400).ok());
    }
    ASSERT_TRUE(algo.Validate().ok()) << "k=" << k;
  }
}

TEST(FdRmsTest, DynamicQualityMatchesFromScratchRebuild) {
  // After heavy churn, the maintained result should be roughly as good as
  // re-initializing FD-RMS from scratch on the same snapshot.
  PointSet ps = GenerateIndep(800, 3, 9);
  std::vector<std::pair<int, Point>> initial;
  for (int i = 0; i < 400; ++i) initial.emplace_back(i, ps.Get(i));
  FdRmsOptions opt = Options(1, 10);
  FdRms dynamic(3, opt);
  ASSERT_TRUE(dynamic.Initialize(initial).ok());
  std::unordered_set<int> live;
  for (int i = 0; i < 400; ++i) live.insert(i);
  Rng rng(10);
  for (int i = 400; i < 800; ++i) {
    ASSERT_TRUE(dynamic.Insert(i, ps.Get(i)).ok());
    live.insert(i);
    int victim = *live.begin();
    ASSERT_TRUE(dynamic.Delete(victim).ok());
    live.erase(victim);
  }
  FdRms fresh(3, opt);
  std::vector<std::pair<int, Point>> snapshot;
  for (int id : live) snapshot.emplace_back(id, ps.Get(id));
  ASSERT_TRUE(fresh.Initialize(snapshot).ok());
  // Compare sampled regrets of both results on the same snapshot.
  auto regret_of = [&](const std::vector<int>& q) {
    Rng eval_rng(123);
    double worst = 0.0;
    for (int s = 0; s < 3000; ++s) {
      Point u = SampleUnitVectorNonneg(3, &eval_rng);
      double omega = 0.0;
      for (int id : live) omega = std::max(omega, Dot(u, ps.Get(id)));
      double best = 0.0;
      for (int id : q) best = std::max(best, Dot(u, ps.Get(id)));
      if (omega > 0.0) worst = std::max(worst, 1.0 - best / omega);
    }
    return worst;
  };
  double dynamic_regret = regret_of(dynamic.Result());
  double fresh_regret = regret_of(fresh.Result());
  EXPECT_LE(dynamic_regret, fresh_regret + 0.05)
      << "dynamic " << dynamic_regret << " vs fresh " << fresh_regret;
}

TEST(FdRmsTest, RegretMeetsEpsBoundOnSampledUtilitiesAfterChurn) {
  // Oracle check of the cover guarantee: after an arbitrary update stream,
  // every universe utility u_i must have some q in Q_t with
  //   <u_i, q> >= (1 - eps) * omega_k(u_i, P_t),
  // i.e. the k-regret ratio of Q_t over the sampled universe is <= eps.
  // omega_k is recomputed brute-force from the live tuples, independently
  // of the maintained dual-tree state.
  const double eps = 0.05;
  const int k = 2;
  PointSet ps = GenerateIndep(500, 3, 17);
  FdRms algo(3, Options(k, 12, eps));
  std::vector<std::pair<int, Point>> initial;
  for (int i = 0; i < 250; ++i) initial.emplace_back(i, ps.Get(i));
  ASSERT_TRUE(algo.Initialize(initial).ok());
  std::unordered_set<int> live;
  for (int i = 0; i < 250; ++i) live.insert(i);
  Rng rng(29);
  for (int i = 250; i < 500; ++i) {
    ASSERT_TRUE(algo.Insert(i, ps.Get(i)).ok());
    live.insert(i);
    if (rng.Uniform() < 0.5) {
      int victim = *live.begin();
      ASSERT_TRUE(algo.Delete(victim).ok());
      live.erase(victim);
    }
  }
  const std::vector<int> q = algo.Result();
  ASSERT_FALSE(q.empty());
  const std::vector<Point>& utilities = algo.topk().utilities();
  for (int i = 0; i < algo.current_m(); ++i) {
    const Point& u = utilities[i];
    // Brute-force omega_k(u, P_t): k-th largest score among live tuples.
    std::vector<double> scores;
    scores.reserve(live.size());
    for (int id : live) scores.push_back(Dot(u, ps.Get(id)));
    double omega_k = 0.0;  // fewer than k live tuples => omega_k = 0
    if (static_cast<int>(scores.size()) >= k) {
      std::nth_element(scores.begin(), scores.begin() + (k - 1), scores.end(),
                       std::greater<double>());
      omega_k = scores[k - 1];
    }
    double best = 0.0;
    for (int id : q) best = std::max(best, Dot(u, ps.Get(id)));
    EXPECT_GE(best, (1.0 - eps) * omega_k - 1e-9)
        << "utility " << i << ": regret ratio " << 1.0 - best / omega_k
        << " exceeds eps=" << eps;
  }
}

TEST(FdRmsTest, IdenticalSeedsReproduceIdenticalResults) {
  // Determinism: two instances with the same FdRmsOptions.seed replaying the
  // same mutation stream must agree on m and Q_t at every checkpoint.
  PointSet ps = GenerateAntiCor(400, 3, 23);
  FdRmsOptions opt = Options(1, 10, 0.05, 256, /*seed=*/12345);
  FdRms a(3, opt), b(3, opt);
  std::vector<std::pair<int, Point>> initial;
  for (int i = 0; i < 200; ++i) initial.emplace_back(i, ps.Get(i));
  ASSERT_TRUE(a.Initialize(initial).ok());
  ASSERT_TRUE(b.Initialize(initial).ok());
  EXPECT_EQ(a.current_m(), b.current_m());
  EXPECT_EQ(a.Result(), b.Result());
  for (int i = 200; i < 400; ++i) {
    ASSERT_TRUE(a.Insert(i, ps.Get(i)).ok());
    ASSERT_TRUE(b.Insert(i, ps.Get(i)).ok());
    if (i % 2 == 0) {
      ASSERT_TRUE(a.Delete(i - 200).ok());
      ASSERT_TRUE(b.Delete(i - 200).ok());
    }
    if (i % 50 == 0) {
      EXPECT_EQ(a.current_m(), b.current_m()) << "after op " << i;
      EXPECT_EQ(a.Result(), b.Result()) << "after op " << i;
    }
  }
  EXPECT_EQ(a.current_m(), b.current_m());
  EXPECT_EQ(a.Result(), b.Result());
}

}  // namespace
}  // namespace fdrms
