#include <gtest/gtest.h>

#include "common/rng.h"
#include "geometry/sampling.h"
#include "index/conetree.h"

namespace fdrms {
namespace {

TEST(ConeTreeTest, AllThresholdsZeroReachesEverything) {
  Rng rng(1);
  auto utils = SampleDirections(64, 4, &rng);
  ConeTree cone(utils);
  Point p{0.3, 0.1, 0.9, 0.4};
  auto reached = cone.FindReached(p);
  EXPECT_EQ(reached.size(), utils.size());
}

TEST(ConeTreeTest, InfiniteThresholdReachesNothing) {
  Rng rng(2);
  auto utils = SampleDirections(32, 3, &rng);
  ConeTree cone(utils);
  for (int i = 0; i < cone.size(); ++i) cone.SetThreshold(i, 1e18);
  EXPECT_TRUE(cone.FindReached({1.0, 1.0, 1.0}).empty());
}

TEST(ConeTreeTest, ZeroPointMatchesOnlyZeroThresholds) {
  Rng rng(3);
  auto utils = SampleDirections(16, 3, &rng);
  ConeTree cone(utils);
  cone.SetThreshold(0, 0.5);
  cone.SetThreshold(5, 0.1);
  auto reached = cone.FindReached({0.0, 0.0, 0.0});
  EXPECT_EQ(reached.size(), utils.size() - 2);
  for (int u : reached) {
    EXPECT_NE(u, 0);
    EXPECT_NE(u, 5);
  }
}

struct ConeParam {
  int num_utils;
  int dim;
  uint64_t seed;
};

class ConeTreeRandomTest : public ::testing::TestWithParam<ConeParam> {};

TEST_P(ConeTreeRandomTest, MatchesBruteForceUnderThresholdChurn) {
  const ConeParam param = GetParam();
  Rng rng(param.seed);
  auto utils = SampleUtilityVectors(param.num_utils, param.dim, &rng);
  ConeTree cone(utils);
  for (int round = 0; round < 60; ++round) {
    // Raise/lower some thresholds, as top-k maintenance does.
    for (int j = 0; j < 5; ++j) {
      int u = rng.UniformInt(param.num_utils);
      cone.SetThreshold(u, rng.Uniform() * 1.2);
    }
    Point p(param.dim);
    for (double& v : p) v = rng.Uniform();
    EXPECT_EQ(cone.FindReached(p), cone.FindReachedBruteForce(p))
        << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConeTreeRandomTest,
    ::testing::Values(ConeParam{16, 2, 11}, ConeParam{100, 4, 12},
                      ConeParam{256, 6, 13}, ConeParam{500, 9, 14},
                      ConeParam{64, 12, 15}),
    [](const auto& info) {
      std::string name = "m";
      name += std::to_string(info.param.num_utils);
      name += 'd';
      name += std::to_string(info.param.dim);
      return name;
    });

TEST(ConeTreeTest, ThresholdGetterRoundTrips) {
  Rng rng(9);
  auto utils = SampleDirections(10, 3, &rng);
  ConeTree cone(utils);
  cone.SetThreshold(4, 0.77);
  EXPECT_DOUBLE_EQ(cone.GetThreshold(4), 0.77);
  EXPECT_DOUBLE_EQ(cone.GetThreshold(3), 0.0);
}

TEST(ConeTreeTest, DuplicateUtilityVectorsSupported) {
  // All identical vectors force the degenerate-split fallback.
  std::vector<Point> utils(20, Point{0.6, 0.8});
  ConeTree cone(utils);
  auto reached = cone.FindReached({1.0, 1.0});
  EXPECT_EQ(reached.size(), 20u);
}

}  // namespace
}  // namespace fdrms
