#include <gtest/gtest.h>

#include <cmath>

#include "geometry/point.h"
#include "geometry/pointset.h"
#include "geometry/sampling.h"

namespace fdrms {
namespace {

TEST(PointMathTest, DotAndNorm) {
  Point a{1.0, 2.0, 2.0};
  Point b{2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm(a), 3.0);
}

TEST(PointMathTest, NormalizeMakesUnit) {
  Point a{3.0, 4.0};
  Normalize(&a);
  EXPECT_NEAR(Norm(a), 1.0, 1e-12);
  EXPECT_NEAR(a[0], 0.6, 1e-12);
}

TEST(PointMathTest, AngleOfOrthogonalVectors) {
  Point a{1.0, 0.0};
  Point b{0.0, 1.0};
  EXPECT_NEAR(Angle(a, b), M_PI / 2.0, 1e-12);
  EXPECT_NEAR(Angle(a, a), 0.0, 1e-6);
}

TEST(DominanceTest, StrictAndEqualCases) {
  EXPECT_TRUE(Dominates({1.0, 1.0}, {0.5, 1.0}));
  EXPECT_FALSE(Dominates({1.0, 1.0}, {1.0, 1.0}));  // equal: no strict gain
  EXPECT_FALSE(Dominates({1.0, 0.0}, {0.0, 1.0}));  // incomparable
  EXPECT_TRUE(Dominates({0.7, 0.5, 0.9}, {0.7, 0.4, 0.9}));
}

TEST(PointSetTest, AddGetScore) {
  PointSet ps(2);
  EXPECT_TRUE(ps.empty());
  int id0 = ps.Add({0.2, 1.0});
  int id1 = ps.Add({0.6, 0.8});
  EXPECT_EQ(id0, 0);
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(ps.size(), 2);
  EXPECT_EQ(ps.Get(1), (Point{0.6, 0.8}));
  Point u{0.5, 0.5};
  EXPECT_NEAR(ps.Score(u, 0), 0.6, 1e-12);
}

TEST(SamplingTest, UnitVectorsAreUnitAndNonnegative) {
  Rng rng(5);
  for (int d : {2, 4, 8}) {
    for (int i = 0; i < 50; ++i) {
      Point u = SampleUnitVectorNonneg(d, &rng);
      EXPECT_NEAR(Norm(u), 1.0, 1e-9);
      for (double x : u) EXPECT_GE(x, 0.0);
    }
  }
}

TEST(SamplingTest, UtilityVectorsStartWithBasis) {
  Rng rng(5);
  auto utils = SampleUtilityVectors(10, 3, &rng);
  ASSERT_EQ(utils.size(), 10u);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(utils[i][j], i == j ? 1.0 : 0.0);
    }
  }
  for (size_t i = 3; i < utils.size(); ++i) {
    EXPECT_NEAR(Norm(utils[i]), 1.0, 1e-9);
  }
}

TEST(SamplingTest, FarthestPointSpreadsDirections) {
  Rng rng(17);
  auto pool = SampleDirections(200, 3, &rng);
  auto spread = FarthestPointDirections(pool, 10);
  ASSERT_EQ(spread.size(), 10u);
  // The chosen set should have a larger minimum pairwise angle than the
  // pool prefix of the same size.
  auto min_angle = [](const std::vector<Point>& v) {
    double best = 10.0;
    for (size_t i = 0; i < v.size(); ++i) {
      for (size_t j = i + 1; j < v.size(); ++j) {
        best = std::min(best, Angle(v[i], v[j]));
      }
    }
    return best;
  };
  std::vector<Point> prefix(pool.begin(), pool.begin() + 10);
  EXPECT_GT(min_angle(spread), min_angle(prefix));
}

TEST(SamplingTest, FarthestPointHandlesSmallPools) {
  Rng rng(3);
  auto pool = SampleDirections(3, 2, &rng);
  auto spread = FarthestPointDirections(pool, 10);
  EXPECT_LE(spread.size(), 3u);
  EXPECT_GE(spread.size(), 1u);
  EXPECT_TRUE(FarthestPointDirections({}, 5).empty());
}

}  // namespace
}  // namespace fdrms
