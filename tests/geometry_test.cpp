#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "geometry/point.h"
#include "geometry/pointset.h"
#include "geometry/sampling.h"
#include "geometry/score_kernel.h"

namespace fdrms {
namespace {

TEST(PointMathTest, DotAndNorm) {
  Point a{1.0, 2.0, 2.0};
  Point b{2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(Norm(a), 3.0);
}

TEST(PointMathTest, NormalizeMakesUnit) {
  Point a{3.0, 4.0};
  Normalize(&a);
  EXPECT_NEAR(Norm(a), 1.0, 1e-12);
  EXPECT_NEAR(a[0], 0.6, 1e-12);
}

TEST(PointMathTest, AngleOfOrthogonalVectors) {
  Point a{1.0, 0.0};
  Point b{0.0, 1.0};
  EXPECT_NEAR(Angle(a, b), M_PI / 2.0, 1e-12);
  EXPECT_NEAR(Angle(a, a), 0.0, 1e-6);
}

TEST(DominanceTest, StrictAndEqualCases) {
  EXPECT_TRUE(Dominates({1.0, 1.0}, {0.5, 1.0}));
  EXPECT_FALSE(Dominates({1.0, 1.0}, {1.0, 1.0}));  // equal: no strict gain
  EXPECT_FALSE(Dominates({1.0, 0.0}, {0.0, 1.0}));  // incomparable
  EXPECT_TRUE(Dominates({0.7, 0.5, 0.9}, {0.7, 0.4, 0.9}));
}

TEST(PointSetTest, AddGetScore) {
  PointSet ps(2);
  EXPECT_TRUE(ps.empty());
  int id0 = ps.Add({0.2, 1.0});
  int id1 = ps.Add({0.6, 0.8});
  EXPECT_EQ(id0, 0);
  EXPECT_EQ(id1, 1);
  EXPECT_EQ(ps.size(), 2);
  EXPECT_EQ(ps.Get(1), (Point{0.6, 0.8}));
  Point u{0.5, 0.5};
  EXPECT_NEAR(ps.Score(u, 0), 0.6, 1e-12);
}

TEST(SamplingTest, UnitVectorsAreUnitAndNonnegative) {
  Rng rng(5);
  for (int d : {2, 4, 8}) {
    for (int i = 0; i < 50; ++i) {
      Point u = SampleUnitVectorNonneg(d, &rng);
      EXPECT_NEAR(Norm(u), 1.0, 1e-9);
      for (double x : u) EXPECT_GE(x, 0.0);
    }
  }
}

TEST(SamplingTest, UtilityVectorsStartWithBasis) {
  Rng rng(5);
  auto utils = SampleUtilityVectors(10, 3, &rng);
  ASSERT_EQ(utils.size(), 10u);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(utils[i][j], i == j ? 1.0 : 0.0);
    }
  }
  for (size_t i = 3; i < utils.size(); ++i) {
    EXPECT_NEAR(Norm(utils[i]), 1.0, 1e-9);
  }
}

TEST(SamplingTest, FarthestPointSpreadsDirections) {
  Rng rng(17);
  auto pool = SampleDirections(200, 3, &rng);
  auto spread = FarthestPointDirections(pool, 10);
  ASSERT_EQ(spread.size(), 10u);
  // The chosen set should have a larger minimum pairwise angle than the
  // pool prefix of the same size.
  auto min_angle = [](const std::vector<Point>& v) {
    double best = 10.0;
    for (size_t i = 0; i < v.size(); ++i) {
      for (size_t j = i + 1; j < v.size(); ++j) {
        best = std::min(best, Angle(v[i], v[j]));
      }
    }
    return best;
  };
  std::vector<Point> prefix(pool.begin(), pool.begin() + 10);
  EXPECT_GT(min_angle(spread), min_angle(prefix));
}

TEST(SamplingTest, FarthestPointHandlesSmallPools) {
  Rng rng(3);
  auto pool = SampleDirections(3, 2, &rng);
  auto spread = FarthestPointDirections(pool, 10);
  EXPECT_LE(spread.size(), 3u);
  EXPECT_GE(spread.size(), 1u);
  EXPECT_TRUE(FarthestPointDirections({}, 5).empty());
}

// The SoA kernel's contract: every scoring path (full sweep, gathered
// subset, raw block, single row) agrees with the scalar Dot reference to
// 1e-12 over random matrices of every dimensionality the system serves
// (d = 2..10), including row counts that don't divide the 4-row blocking.
TEST(ScoreKernelTest, KernelsMatchScalarDotOverRandomDims) {
  Rng rng(97);
  for (int d = 2; d <= 10; ++d) {
    for (int rows : {1, 2, 3, 4, 5, 7, 16, 33, 97}) {
      std::vector<Point> mat_rows;
      for (int i = 0; i < rows; ++i) {
        Point u(static_cast<size_t>(d));
        for (double& x : u) x = rng.Uniform() * 2.0 - 0.5;
        mat_rows.push_back(std::move(u));
      }
      Point q(static_cast<size_t>(d));
      for (double& x : q) x = rng.Uniform() * 3.0 - 1.0;
      ScoreMatrix mat(mat_rows);
      ASSERT_EQ(mat.rows(), rows);
      ASSERT_EQ(mat.dim(), d);

      std::vector<double> all;
      mat.ScoreAll(q, &all);
      ASSERT_EQ(all.size(), static_cast<size_t>(rows));
      std::vector<int> subset;
      for (int i = rows - 1; i >= 0; i -= 2) subset.push_back(i);
      std::vector<double> gathered(subset.size());
      mat.ScoreSubset(q, subset, gathered.data());
      for (int i = 0; i < rows; ++i) {
        const double reference = Dot(mat_rows[static_cast<size_t>(i)], q);
        EXPECT_NEAR(all[static_cast<size_t>(i)], reference, 1e-12)
            << "ScoreAll d=" << d << " rows=" << rows << " i=" << i;
        EXPECT_NEAR(mat.RowDot(i, q), reference, 1e-12)
            << "RowDot d=" << d << " rows=" << rows << " i=" << i;
      }
      for (size_t j = 0; j < subset.size(); ++j) {
        const double reference =
            Dot(mat_rows[static_cast<size_t>(subset[j])], q);
        EXPECT_NEAR(gathered[j], reference, 1e-12)
            << "ScoreSubset d=" << d << " rows=" << rows << " j=" << j;
      }
    }
  }
}

TEST(ScoreKernelTest, ScoreBlockHandlesRaggedTailAndStride) {
  // A raw block with padded stride: the kernel must respect the stride and
  // the non-multiple-of-four tail.
  const int d = 3;
  const size_t stride = 4;
  const size_t count = 6;
  std::vector<double> rows(count * stride, -7.0);  // poison the padding
  for (size_t j = 0; j < count; ++j) {
    for (int k = 0; k < d; ++k) {
      rows[j * stride + static_cast<size_t>(k)] =
          static_cast<double>(j + 1) * (k + 1);
    }
  }
  const double q[d] = {1.0, 0.5, 0.25};
  double out[count];
  ScoreBlock(rows.data(), stride, d, count, q, out);
  for (size_t j = 0; j < count; ++j) {
    const double expect = static_cast<double>(j + 1) * (1.0 + 1.0 + 0.75);
    EXPECT_NEAR(out[j], expect, 1e-12) << "row " << j;
  }
}

TEST(ScoreKernelTest, EmptyMatrixIsWellFormed) {
  ScoreMatrix empty;
  EXPECT_EQ(empty.rows(), 0);
  EXPECT_EQ(empty.dim(), 0);
  ScoreMatrix from_empty{std::vector<Point>{}};
  EXPECT_EQ(from_empty.rows(), 0);
  Point q{};
  std::vector<double> out{1.0, 2.0};
  from_empty.ScoreAll(q, &out);
  EXPECT_TRUE(out.empty());
}

}  // namespace
}  // namespace fdrms
