#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/snapshot.h"
#include "data/generators.h"
#include "eval/service_driver.h"
#include "eval/workload.h"
#include "obs/pow2_hist.h"
#include "serve/bounded_queue.h"
#include "serve/fdrms_service.h"
#include "serve/mpsc_ring_queue.h"

// All suites here are named Serve* on purpose: the `tsan` CMake test preset
// (and the CI ThreadSanitizer job) selects them with the regex ^Serve.

namespace fdrms {
namespace {

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps, int count) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < count; ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

/// Replays `ops` sequentially on a fresh FdRms with the service's per-op
/// semantics: a rejected operation is skipped, the rest keep going.
std::unique_ptr<FdRms> SequentialReplay(
    int dim, const FdRmsOptions& opt,
    const std::vector<std::pair<int, Point>>& initial,
    const std::vector<FdRms::BatchOp>& ops) {
  auto algo = std::make_unique<FdRms>(dim, opt);
  EXPECT_TRUE(algo->Initialize(initial).ok());
  for (const FdRms::BatchOp& op : ops) {
    switch (op.kind) {
      case FdRms::BatchOp::Kind::kInsert:
        (void)algo->Insert(op.id, op.point);
        break;
      case FdRms::BatchOp::Kind::kDelete:
        (void)algo->Delete(op.id);
        break;
      case FdRms::BatchOp::Kind::kUpdate:
        (void)algo->Update(op.id, op.point);
        break;
    }
  }
  return algo;
}

// Shared queue-contract suite: both the mutex reference (BoundedQueue) and
// the lock-free ring (MpscRingQueue) must satisfy the exact same
// semantics — the serving layer treats them as interchangeable.
template <typename Q>
class ServeQueueTest : public ::testing::Test {};
using QueueTypes = ::testing::Types<BoundedQueue<int>, MpscRingQueue<int>>;
TYPED_TEST_SUITE(ServeQueueTest, QueueTypes);

TYPED_TEST(ServeQueueTest, PushPopPreservesFifoOrder) {
  TypeParam q(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.Push(i));
  std::vector<int> got;
  ASSERT_TRUE(q.PopBatch(3, &got));
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
  ASSERT_TRUE(q.PopBatch(16, &got));
  EXPECT_EQ(got, (std::vector<int>{3, 4}));
  EXPECT_EQ(q.size(), 0u);
}

TYPED_TEST(ServeQueueTest, TryPushRefusesWhenFull) {
  TypeParam q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  std::vector<int> got;
  ASSERT_TRUE(q.PopBatch(1, &got));
  EXPECT_TRUE(q.TryPush(3));  // room again
}

TYPED_TEST(ServeQueueTest, CloseWakesBlockedProducerAndDrainsConsumer) {
  TypeParam q(1);
  ASSERT_TRUE(q.Push(7));
  std::atomic<bool> push_returned{false};
  std::atomic<bool> push_result{true};
  std::thread producer([&] {
    push_result = q.Push(8);  // queue full: blocks until Close
    push_returned = true;
  });
  q.Close();
  producer.join();
  EXPECT_TRUE(push_returned);
  EXPECT_FALSE(push_result);     // gave up, element not enqueued
  EXPECT_FALSE(q.TryPush(9));    // closed refuses new work
  std::vector<int> got;
  EXPECT_TRUE(q.PopBatch(4, &got));  // drains what was accepted
  EXPECT_EQ(got, (std::vector<int>{7}));
  EXPECT_FALSE(q.PopBatch(4, &got));  // closed + empty: end of stream
}

TYPED_TEST(ServeQueueTest, ClearReportsDroppedElements) {
  TypeParam q(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.Push(i));
  EXPECT_EQ(q.Clear(), 6u);
  EXPECT_EQ(q.size(), 0u);
}

TYPED_TEST(ServeQueueTest, KickWakesConsumerWithEmptyBatch) {
  TypeParam q(4);
  std::atomic<bool> popped{false};
  std::atomic<bool> batch_empty{false};
  std::atomic<bool> pop_result{false};
  std::thread consumer([&] {
    std::vector<int> got;
    pop_result = q.PopBatch(4, &got);  // empty queue: blocks until the kick
    batch_empty = got.empty();
    popped = true;
  });
  while (!popped.load()) {
    q.Kick();
    std::this_thread::yield();
  }
  consumer.join();
  EXPECT_TRUE(pop_result);   // kicked, not closed: keep consuming
  EXPECT_TRUE(batch_empty);  // woken without elements
  // Elements still flow normally afterwards, and Close still ends the
  // stream even with a stale kick pending.
  ASSERT_TRUE(q.Push(42));
  std::vector<int> got;
  ASSERT_TRUE(q.PopBatch(4, &got));
  EXPECT_EQ(got, (std::vector<int>{42}));
  q.Kick();
  q.Close();
  EXPECT_FALSE(q.PopBatch(4, &got));  // closed and drained: end of stream
}

TYPED_TEST(ServeQueueTest, TotalPushedCountsOnlyAcceptedElements) {
  TypeParam q(2);
  EXPECT_EQ(q.total_pushed(), 0u);
  ASSERT_TRUE(q.Push(1));
  ASSERT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: not counted
  EXPECT_EQ(q.total_pushed(), 2u);
  q.Close();
  EXPECT_FALSE(q.TryPush(4));  // closed: not counted
  EXPECT_EQ(q.total_pushed(), 2u);
}

// Ring-specific coverage: wraparound bookkeeping, the logical (non-power-
// of-two) capacity gate, and destruction with elements still queued.
TEST(ServeRingQueueTest, WraparoundPreservesFifoAcrossManyCycles) {
  MpscRingQueue<int> q(4);  // forces index wrap every 4 elements
  std::vector<int> got;
  int next_push = 0, next_pop = 0;
  for (int cycle = 0; cycle < 100; ++cycle) {
    // Vary the fill level so the head/tail indices cross every cell
    // alignment, including full and empty transitions.
    const int burst = 1 + cycle % 4;
    for (int i = 0; i < burst; ++i) ASSERT_TRUE(q.Push(next_push++));
    ASSERT_TRUE(q.PopBatch(static_cast<size_t>(burst), &got));
    for (int v : got) EXPECT_EQ(v, next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.total_pushed(), static_cast<uint64_t>(next_push));
}

TEST(ServeRingQueueTest, LogicalCapacityHonoredBeyondPowerOfTwoCells) {
  MpscRingQueue<int> q(5);  // physical cell count rounds up to 8
  EXPECT_EQ(q.capacity(), 5u);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.TryPush(i));
  EXPECT_FALSE(q.TryPush(5));  // logical bound, not the cell count
  EXPECT_EQ(q.size(), 5u);
  std::vector<int> got;
  ASSERT_TRUE(q.PopBatch(2, &got));
  EXPECT_TRUE(q.TryPush(5));
  EXPECT_TRUE(q.TryPush(6));
  EXPECT_FALSE(q.TryPush(7));  // full again at exactly 5
}

TEST(ServeRingQueueTest, DestructionReleasesUnconsumedElements) {
  // Heap-owning payloads left in the ring must be destroyed (ASan-visible
  // if not).
  auto q = std::make_unique<MpscRingQueue<std::vector<int>>>(8);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(q->Push(std::vector<int>(100, i)));
  }
  q.reset();  // drops 6 live vectors with the queue
}

// Concurrency stress suite (also in the TSan stress lane, see
// CMakePresets.json tsan-stress): full/empty races under real
// multi-producer churn.
TEST(ServeRingStressTest, MultiProducerChurnKeepsPerProducerOrderAndCounts) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  MpscRingQueue<int> q(64);  // small: constant full/empty transitions
  std::vector<int> consumed;
  std::thread consumer([&] {
    std::vector<int> batch;
    while (q.PopBatch(16, &batch)) {
      consumed.insert(consumed.end(), batch.begin(), batch.end());
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(t * kPerProducer + i));
      }
    });
  }
  for (std::thread& th : producers) th.join();
  q.Close();
  consumer.join();
  ASSERT_EQ(consumed.size(), static_cast<size_t>(kProducers * kPerProducer));
  EXPECT_EQ(q.total_pushed(), static_cast<uint64_t>(kProducers * kPerProducer));
  // Each producer's elements arrive in its own submission order, and every
  // element arrives exactly once.
  std::vector<int> next(kProducers, 0);
  for (int v : consumed) {
    const int t = v / kPerProducer;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kProducers);
    EXPECT_EQ(v % kPerProducer, next[t]);
    ++next[t];
  }
  for (int t = 0; t < kProducers; ++t) EXPECT_EQ(next[t], kPerProducer);
}

TEST(ServeRingStressTest, TryPushSheddingConservesAcceptedElements) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 4000;
  MpscRingQueue<int> q(32);
  std::atomic<uint64_t> accepted{0};
  std::atomic<uint64_t> consumed_count{0};
  std::atomic<uint64_t> consumed_sum{0};
  std::atomic<uint64_t> accepted_sum{0};
  std::thread consumer([&] {
    std::vector<int> batch;
    while (q.PopBatch(8, &batch)) {
      consumed_count.fetch_add(batch.size(), std::memory_order_relaxed);
      for (int v : batch) {
        consumed_sum.fetch_add(static_cast<uint64_t>(v),
                               std::memory_order_relaxed);
      }
    }
  });
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int v = t * kPerProducer + i + 1;
        if (q.TryPush(v)) {
          accepted.fetch_add(1, std::memory_order_relaxed);
          accepted_sum.fetch_add(static_cast<uint64_t>(v),
                                 std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& th : producers) th.join();
  q.Close();
  consumer.join();
  // Load shedding must lose exactly the rejected elements: whatever was
  // accepted is consumed, element for element.
  EXPECT_EQ(consumed_count.load(), accepted.load());
  EXPECT_EQ(consumed_sum.load(), accepted_sum.load());
  EXPECT_EQ(q.total_pushed(), accepted.load());
  EXPECT_GT(accepted.load(), 0u);
}

TEST(ServeRingStressTest, CloseRaceNeverLosesOrInventsAcceptedPushes) {
  // Close() racing a hot producer: every Push that reported success must
  // be drained, and every Push the close beat must report failure — the
  // contract the reference queue enforces with its mutex and the ring
  // enforces with the post-claim re-check (dead cells).
  for (int iter = 0; iter < 200; ++iter) {
    MpscRingQueue<int> q(8);
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> consumed{0};
    std::thread producer([&] {
      int i = 0;
      while (q.Push(i++)) accepted.fetch_add(1, std::memory_order_relaxed);
    });
    std::thread consumer([&] {
      std::vector<int> batch;
      while (q.PopBatch(4, &batch)) {
        consumed.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    });
    if (iter % 2 == 0) std::this_thread::yield();  // vary the close timing
    q.Close();
    producer.join();
    consumer.join();
    EXPECT_EQ(consumed.load(), accepted.load()) << "iter " << iter;
    EXPECT_EQ(q.total_pushed(), accepted.load()) << "iter " << iter;
  }
}

TEST(ServeRingStressTest, KickStormWhilePushingNeverLosesElements) {
  constexpr int kOps = 3000;
  MpscRingQueue<int> q(16);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> consumed{0};
  std::atomic<uint64_t> empty_wakes{0};
  std::thread consumer([&] {
    std::vector<int> batch;
    while (q.PopBatch(4, &batch)) {
      if (batch.empty()) {
        empty_wakes.fetch_add(1, std::memory_order_relaxed);
      } else {
        consumed.fetch_add(batch.size(), std::memory_order_relaxed);
      }
    }
  });
  std::thread kicker([&] {
    while (!done.load(std::memory_order_acquire)) {
      q.Kick();
      std::this_thread::yield();
    }
  });
  for (int i = 0; i < kOps; ++i) ASSERT_TRUE(q.Push(i));
  done.store(true, std::memory_order_release);
  kicker.join();
  q.Close();
  consumer.join();
  EXPECT_EQ(consumed.load(), static_cast<uint64_t>(kOps));
  EXPECT_GT(empty_wakes.load(), 0u);  // the kicks really did wake the pop
}

TEST(ServeServiceTest, StartPublishesInitialSnapshot) {
  PointSet ps = GenerateIndep(120, 3, 1);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 8;
  sopt.algo.max_utilities = 128;
  FdRmsService service(3, sopt);
  EXPECT_EQ(service.Query(), nullptr);  // nothing published pre-Start
  ASSERT_TRUE(service.Start(AsTuples(ps, 120)).ok());
  auto snap = service.Query();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 0u);
  EXPECT_EQ(snap->ops_applied, 0u);
  EXPECT_EQ(snap->live_tuples, 120);
  EXPECT_LE(static_cast<int>(snap->ids.size()), 8);
  EXPECT_EQ(snap->ids.size(), snap->points.size());
  // The published state is exactly what a direct instance computes.
  FdRms direct(3, sopt.algo);
  ASSERT_TRUE(direct.Initialize(AsTuples(ps, 120)).ok());
  EXPECT_EQ(snap->ids, direct.Result());
  EXPECT_EQ(snap->sample_size_m, direct.current_m());
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ServeServiceTest, SubmitBeforeStartOrAfterStopFails) {
  FdRmsServiceOptions sopt;
  sopt.algo.max_utilities = 32;
  FdRmsService service(2, sopt);
  EXPECT_EQ(service.SubmitDelete(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(service.Stop().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Start({{0, {0.3, 0.4}}, {1, {0.5, 0.2}}}).ok());
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_TRUE(service.Stop().ok());  // idempotent
  EXPECT_EQ(service.SubmitInsert(9, {0.1, 0.1}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServeServiceTest, FlushedStreamMatchesDirectApplication) {
  PointSet ps = GenerateAntiCor(200, 3, 2);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 10;
  sopt.algo.max_utilities = 128;
  FdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 100)).ok());
  FdRms direct(3, sopt.algo);
  ASSERT_TRUE(direct.Initialize(AsTuples(ps, 100)).ok());
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
    ASSERT_TRUE(direct.Insert(i, ps.Get(i)).ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(service.SubmitDelete(i).ok());
    ASSERT_TRUE(direct.Delete(i).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  auto snap = service.Query();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->ops_applied, 150u);
  EXPECT_EQ(snap->ops_rejected, 0u);
  EXPECT_EQ(snap->live_tuples, 150);
  EXPECT_EQ(snap->ids, direct.Result());
  EXPECT_EQ(snap->sample_size_m, direct.current_m());
  // Points are resolved against the same live tuples.
  for (size_t i = 0; i < snap->ids.size(); ++i) {
    EXPECT_EQ(snap->points[i], ps.Get(snap->ids[i]));
  }
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ServeServiceTest, RejectedOperationDoesNotEatTheBatchTail) {
  PointSet ps = GenerateIndep(60, 2, 3);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 5;
  sopt.algo.max_utilities = 64;
  FdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 40)).ok());
  ASSERT_TRUE(service.SubmitInsert(3, ps.Get(3)).ok());   // duplicate: rejected
  ASSERT_TRUE(service.SubmitDelete(999).ok());            // absent: rejected
  ASSERT_TRUE(service.SubmitInsert(40, ps.Get(40)).ok()); // fine
  ASSERT_TRUE(service.SubmitDelete(0).ok());              // fine
  ASSERT_TRUE(service.Flush().ok());
  auto snap = service.Query();
  EXPECT_EQ(snap->ops_applied, 2u);
  EXPECT_EQ(snap->ops_rejected, 2u);
  EXPECT_EQ(snap->live_tuples, 40);  // -1 +1
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_TRUE(service.algorithm().topk().tree().Contains(40));
  EXPECT_FALSE(service.algorithm().topk().tree().Contains(0));
}

TEST(ServeServiceTest, RejectPolicySurfacesResourceExhausted) {
  PointSet ps = GenerateIndep(80, 2, 4);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 5;
  sopt.algo.max_utilities = 64;
  sopt.queue_capacity = 1;
  sopt.max_batch = 1;
  sopt.overflow = FdRmsServiceOptions::Overflow::kReject;
  sopt.batch_delay_us_for_test = 2000;  // writer lags: the queue stays full
  FdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 40)).ok());
  int accepted = 0, shed = 0;
  for (int i = 40; i < 80; ++i) {
    Status st = service.SubmitInsert(i, ps.Get(i));
    if (st.ok()) {
      ++accepted;
    } else {
      ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
      ++shed;
    }
  }
  EXPECT_GT(accepted, 0);
  EXPECT_GT(shed, 0);  // a 2ms-per-op writer cannot keep up with a tight loop
  ASSERT_TRUE(service.Flush().ok());
  auto snap = service.Query();
  EXPECT_EQ(snap->ops_applied, static_cast<uint64_t>(accepted));
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ServeServiceTest, StopAbortDropsBacklogAndFailsFlush) {
  PointSet ps = GenerateIndep(300, 2, 5);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 5;
  sopt.algo.max_utilities = 64;
  sopt.max_batch = 1;
  sopt.batch_delay_us_for_test = 3000;
  FdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 100)).ok());
  for (int i = 100; i < 300; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  ASSERT_TRUE(service.Stop(FdRmsService::StopPolicy::kAbort).ok());
  // 200 ops at >= 3ms each would take >= 600ms; submission took far less,
  // so aborting must have found a backlog to drop.
  EXPECT_GT(service.ops_dropped(), 0u);
  auto snap = service.Query();
  EXPECT_EQ(snap->ops_applied + service.ops_dropped(), 200u);
  EXPECT_EQ(service.Flush().code(), StatusCode::kFailedPrecondition);
  // The published state is still a consistent prefix of the stream.
  EXPECT_EQ(snap->live_tuples, 100 + static_cast<int>(snap->ops_applied));
}

TEST(ServeServiceTest, DrainStopAppliesEverythingQueued) {
  PointSet ps = GenerateIndep(200, 2, 6);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.max_batch = 4;
  sopt.batch_delay_us_for_test = 500;
  FdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 100)).ok());
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  ASSERT_TRUE(service.Stop(FdRmsService::StopPolicy::kDrain).ok());
  auto snap = service.Query();
  EXPECT_EQ(snap->ops_applied, 100u);
  EXPECT_EQ(snap->live_tuples, 200);
  EXPECT_EQ(service.ops_dropped(), 0u);
}

// The acceptance scenario: 4 readers + 3 submitters over a mixed
// insert/delete stream. Readers assert internal consistency of every
// snapshot they observe; afterwards the drained final snapshot must equal a
// sequential replay of the journaled operation order.
TEST(ServeServiceTest, ConcurrentChurnIsConsistentAndMatchesSequentialReplay) {
  constexpr int kReaders = 4;
  constexpr int kSubmitters = 3;
  PointSet ps = GenerateAntiCor(240, 3, 7);
  Workload wl(&ps, 31);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 10;
  sopt.algo.max_utilities = 256;
  sopt.max_batch = 16;
  sopt.record_journal = true;
  FdRmsService service(3, sopt);
  std::vector<std::pair<int, Point>> initial;
  for (int id : wl.initial_ids()) initial.emplace_back(id, ps.Get(id));
  ASSERT_TRUE(service.Start(initial).ok());

  std::atomic<bool> stop_readers{false};
  struct ReaderLog {
    uint64_t queries = 0;
    uint64_t distinct_versions = 0;
    std::string failure;  // first violation seen, empty if none
  };
  std::vector<ReaderLog> logs(kReaders);
  std::vector<std::thread> readers;
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      ReaderLog& log = logs[t];
      uint64_t last_version = 0;
      uint64_t last_consumed = 0;
      bool first = true;
      while (!stop_readers.load(std::memory_order_acquire)) {
        auto snap = service.Query();
        ++log.queries;
        auto fail = [&](const std::string& what) {
          if (log.failure.empty()) log.failure = what;
        };
        if (snap == nullptr) {
          fail("null snapshot");
          break;
        }
        if (!first && snap->version < last_version) fail("version regressed");
        if (first || snap->version != last_version) ++log.distinct_versions;
        uint64_t consumed = snap->ops_applied + snap->ops_rejected;
        if (!first && consumed < last_consumed) fail("op counter regressed");
        if (static_cast<int>(snap->ids.size()) > sopt.algo.r) {
          fail("|Q| exceeds r");
        }
        if (snap->ids.size() != snap->points.size()) {
          fail("ids/points not parallel");
        }
        if (!std::is_sorted(snap->ids.begin(), snap->ids.end()) ||
            std::adjacent_find(snap->ids.begin(), snap->ids.end()) !=
                snap->ids.end()) {
          fail("ids not sorted unique");
        }
        for (const Point& p : snap->points) {
          if (static_cast<int>(p.size()) != 3) fail("point dim mismatch");
        }
        last_version = snap->version;
        last_consumed = consumed;
        first = false;
        std::this_thread::yield();
      }
    });
  }

  const auto& ops = wl.operations();
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < ops.size();
           i += kSubmitters) {
        Status st = ops[i].is_insert
                        ? service.SubmitInsert(ops[i].id, ps.Get(ops[i].id))
                        : service.SubmitDelete(ops[i].id);
        ASSERT_TRUE(st.ok()) << st.ToString();
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  ASSERT_TRUE(service.Flush().ok());
  stop_readers.store(true, std::memory_order_release);
  for (std::thread& th : readers) th.join();
  ASSERT_TRUE(service.Stop().ok());

  for (int t = 0; t < kReaders; ++t) {
    EXPECT_TRUE(logs[t].failure.empty())
        << "reader " << t << ": " << logs[t].failure;
    EXPECT_GT(logs[t].queries, 0u);
  }

  // Accounting: every submitted op was consumed exactly once.
  auto final_snap = service.Query();
  ASSERT_NE(final_snap, nullptr);
  EXPECT_EQ(final_snap->ops_applied + final_snap->ops_rejected, ops.size());
  const std::vector<FdRms::BatchOp>& journal = service.journal();
  ASSERT_EQ(journal.size(), ops.size());

  // The drained snapshot equals a sequential replay of the journaled order.
  auto replay = SequentialReplay(3, sopt.algo, initial, journal);
  EXPECT_EQ(final_snap->ids, replay->Result());
  EXPECT_EQ(final_snap->sample_size_m, replay->current_m());
  EXPECT_EQ(final_snap->live_tuples, replay->size());
  EXPECT_EQ(final_snap->ids, service.algorithm().Result());
  ASSERT_TRUE(service.algorithm().Validate().ok());
}

TEST(ServeServiceTest, CollectRangeReadsLiveTuplesWhileRunning) {
  PointSet ps = GenerateIndep(150, 3, 12);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  FdRmsService service(3, sopt);
  std::vector<std::pair<int, Point>> out;
  // Not running yet: the writer cannot serve an inspection.
  EXPECT_EQ(service.CollectRange([](int) { return true; }, &out).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(service.Start(AsTuples(ps, 100)).ok());
  for (int i = 100; i < 150; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  // The writer stays running: the range is read out of the live state.
  ASSERT_TRUE(service.CollectRange([](int id) { return id < 30; }, &out).ok());
  EXPECT_TRUE(service.running());
  ASSERT_EQ(out.size(), 30u);
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].first, i);  // sorted by id
    EXPECT_EQ(out[static_cast<size_t>(i)].second, ps.Get(i));
  }
  ASSERT_TRUE(service.CollectRange([](int id) { return id >= 140; }, &out).ok());
  EXPECT_EQ(out.size(), 10u);
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_EQ(service.CollectRange([](int) { return true; }, &out).code(),
            StatusCode::kFailedPrecondition);
}

TEST(ServeResumeTest, ResumeFromSnapshotSkipsHistory) {
  PointSet ps = GenerateIndep(200, 3, 13);
  const std::string path = ::testing::TempDir() + "serve_resume.snapshot";
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.persist_every_batches = 1;
  sopt.persist_path = path;
  {
    FdRmsService service(3, sopt);
    ASSERT_TRUE(service.Start(AsTuples(ps, 120)).ok());
    for (int i = 120; i < 200; ++i) {
      ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
    }
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(service.SubmitDelete(i).ok());
    }
    ASSERT_TRUE(service.Flush().ok());
    ASSERT_TRUE(service.Stop().ok());  // exit save captures the final state
  }
  FdRmsServiceOptions ropt = sopt;
  ropt.persist_every_batches = 0;  // resume-only this time
  ropt.resume_path = path;
  FdRmsService service(3, ropt);
  // The resumed service needs no P_0 and no history replay.
  ASSERT_TRUE(service.Start({}).ok());
  EXPECT_TRUE(service.resumed());
  auto snap = service.Query();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 0u);
  EXPECT_EQ(snap->live_tuples, 160);  // 120 - 40 + 80
  // The restored state keeps serving mutations on top of the snapshot.
  ASSERT_TRUE(service.SubmitDelete(100).ok());
  ASSERT_TRUE(service.Flush().ok());
  EXPECT_EQ(service.Query()->ops_rejected, 0u);
  EXPECT_EQ(service.Query()->live_tuples, 159);
  ASSERT_TRUE(service.Stop().ok());
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(service.algorithm().topk().tree().Contains(i)) << i;
  }
  for (int i = 120; i < 200; ++i) {
    EXPECT_TRUE(service.algorithm().topk().tree().Contains(i)) << i;
  }
  ASSERT_TRUE(service.algorithm().Validate().ok());
}

TEST(ServeResumeTest, MissingSnapshotFallsBackToInitial) {
  PointSet ps = GenerateIndep(60, 2, 14);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 4;
  sopt.algo.max_utilities = 32;
  sopt.resume_path = ::testing::TempDir() + "serve_resume_never_written";
  FdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());  // first boot: fresh
  EXPECT_FALSE(service.resumed());
  EXPECT_EQ(service.Query()->live_tuples, 60);
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ServeResumeTest, OptionMismatchFailsStart) {
  PointSet ps = GenerateIndep(80, 2, 15);
  const std::string path = ::testing::TempDir() + "serve_resume_mismatch";
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.persist_every_batches = 1;
  sopt.persist_path = path;
  {
    FdRmsService service(2, sopt);
    ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());
    for (int i = 60; i < 80; ++i) {
      ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
    }
    ASSERT_TRUE(service.Flush().ok());
    ASSERT_TRUE(service.Stop().ok());
    ASSERT_GE(service.persists(), 1u);  // the snapshot to resume from exists
  }
  // A different result budget changes the restored guarantee: refuse.
  FdRmsServiceOptions ropt = sopt;
  ropt.persist_every_batches = 0;
  ropt.resume_path = path;
  ropt.algo.r = 8;
  FdRmsService mismatched(2, ropt);
  EXPECT_EQ(mismatched.Start({}).code(), StatusCode::kInvalidArgument);
  // A corrupt snapshot is an error too, not a silent fresh start.
  const std::string bad = ::testing::TempDir() + "serve_resume_corrupt";
  {
    std::ofstream out(bad, std::ios::trunc);
    out << "not a snapshot\n";
  }
  FdRmsServiceOptions copt = sopt;
  copt.persist_every_batches = 0;
  copt.resume_path = bad;
  FdRmsService corrupt(2, copt);
  EXPECT_FALSE(corrupt.Start({}).ok());
}

TEST(ServePersistTest, WriterPersistsPeriodicallyAndFinalStateOnDrainStop) {
  PointSet ps = GenerateIndep(200, 3, 9);
  const std::string path = ::testing::TempDir() + "serve_persist.snapshot";
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.max_batch = 8;
  sopt.persist_every_batches = 2;
  sopt.persist_path = path;
  FdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 120)).ok());
  for (int i = 120; i < 200; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(service.SubmitDelete(i).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  ASSERT_TRUE(service.Stop(FdRmsService::StopPolicy::kDrain).ok());
  // Periodic saves happened while serving, and the exit save captured the
  // fully drained state.
  EXPECT_GE(service.persists(), 1u);
  EXPECT_EQ(service.persist_failures(), 0u);
  // The persist counter rides the snapshot: >= 120 ops at max_batch 8 means
  // >= 15 batches, so with an interval of 2 a periodic save completed
  // before the last publication (the exit save may add one more).
  EXPECT_GE(service.Query()->persisted, 1u);
  EXPECT_LE(service.Query()->persisted, service.persists());
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "no snapshot at " << path;
  auto loaded = LoadSnapshot(&in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const FdRms& restored = **loaded;
  EXPECT_EQ(restored.size(), service.algorithm().size());
  EXPECT_EQ(restored.current_m(), service.algorithm().current_m());
  ASSERT_TRUE(restored.Validate().ok());
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(restored.topk().tree().Contains(i)) << i;
  }
  for (int i = 120; i < 200; ++i) {
    EXPECT_TRUE(restored.topk().tree().Contains(i)) << i;
  }
}

TEST(ServePersistTest, PersistFailuresAreCountedNotFatal) {
  PointSet ps = GenerateIndep(120, 2, 10);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 4;
  sopt.algo.max_utilities = 32;
  sopt.max_batch = 4;
  sopt.persist_every_batches = 1;
  sopt.persist_path = ::testing::TempDir() + "no_such_dir/serve.snapshot";
  FdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());
  for (int i = 60; i < 120; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  ASSERT_TRUE(service.Stop().ok());
  // The serving path kept going; only the persistence attempts failed.
  EXPECT_EQ(service.Query()->ops_applied, 60u);
  EXPECT_GT(service.persist_failures(), 0u);
  EXPECT_EQ(service.persists(), 0u);
}

TEST(ServeBatchingTest, AdaptiveBoundStaysInRangeAndHistogramsAccount) {
  PointSet ps = GenerateIndep(400, 2, 21);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 4;
  sopt.algo.max_utilities = 32;
  sopt.min_batch = 2;
  sopt.max_batch = 32;
  sopt.adaptive_batching = true;
  FdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 100)).ok());
  // Burst phase: push far more than max_batch so the backlog drives the
  // bound up; then idle flushes let it decay.
  for (int i = 100; i < 400; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(service.SubmitDelete(i).ok());
    ASSERT_TRUE(service.Flush().ok());  // one-op batches: observed depth ~ 1
  }
  auto snap = service.Query();
  ASSERT_NE(snap, nullptr);
  EXPECT_GE(snap->effective_max_batch, sopt.min_batch);
  EXPECT_LE(snap->effective_max_batch, sopt.max_batch);
  ASSERT_EQ(snap->queue_depth_hist.size(), obs::kPow2HistBuckets);
  ASSERT_EQ(snap->batch_size_hist.size(), obs::kPow2HistBuckets);
  // Every applied batch was histogrammed, no batch exceeded the cap, and
  // the writer observed at least one depth beyond min_batch during the
  // burst (otherwise the bound could never have moved).
  uint64_t batches_counted = 0;
  for (size_t b = 0; b < snap->batch_size_hist.size(); ++b) {
    batches_counted += snap->batch_size_hist[b];
    if (snap->batch_size_hist[b] > 0) {
      EXPECT_LE(obs::Pow2HistBucketFloor(b), sopt.max_batch);
    }
  }
  EXPECT_EQ(batches_counted, snap->batches);
  EXPECT_EQ(snap->batch_size_hist[0], 0u);  // batch size 0 is never applied
  double depth_observations = 0;
  for (uint64_t c : snap->queue_depth_hist) {
    depth_observations += static_cast<double>(c);
  }
  EXPECT_GT(depth_observations, 0.0);
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ServeBatchingTest, FixedModeKeepsTheConfiguredBound) {
  PointSet ps = GenerateIndep(200, 2, 22);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 4;
  sopt.algo.max_utilities = 32;
  sopt.max_batch = 16;
  sopt.adaptive_batching = false;  // the pre-adaptive writer
  FdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 100)).ok());
  for (int i = 100; i < 200; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  auto snap = service.Query();
  EXPECT_EQ(snap->effective_max_batch, 16u);
  for (size_t b = 0; b < snap->batch_size_hist.size(); ++b) {
    if (snap->batch_size_hist[b] > 0) {
      EXPECT_LE(obs::Pow2HistBucketFloor(b), 16u);
    }
  }
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ServeLatencyTest, SnapshotCarriesPublicationLatencyQuantiles) {
  PointSet ps = GenerateIndep(160, 2, 11);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 4;
  sopt.algo.max_utilities = 32;
  sopt.max_batch = 4;
  sopt.batch_delay_us_for_test = 1000;  // every batch takes >= 1ms
  FdRmsService service(2, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 80)).ok());
  auto initial = service.Query();
  EXPECT_EQ(initial->publish_p50_us, 0.0);  // no batch completed yet
  EXPECT_EQ(initial->writer_busy_seconds, 0.0);
  for (int i = 80; i < 160; ++i) {
    ASSERT_TRUE(service.SubmitInsert(i, ps.Get(i)).ok());
    if (i % 4 == 3) {
      ASSERT_TRUE(service.Flush().ok());  // force many batches
    }
  }
  ASSERT_TRUE(service.Flush().ok());
  // At least one Flush-separated batch completed before the last published
  // batch, so the window is populated and reflects the injected delay.
  auto snap = service.Query();
  EXPECT_GE(snap->publish_p50_us, 1000.0);
  EXPECT_GE(snap->publish_p99_us, snap->publish_p50_us);
  EXPECT_GT(snap->writer_busy_seconds, 0.0);
  ASSERT_TRUE(service.Stop().ok());
}

TEST(ServeDriverTest, LoadRunDrainsWorkloadAndStaysConsistent) {
  PointSet ps = GenerateIndep(200, 3, 8);
  Workload wl(&ps, 17);
  ServiceLoadOptions lopt;
  lopt.num_readers = 4;
  lopt.num_submitters = 2;
  lopt.service.algo.r = 8;
  lopt.service.algo.max_utilities = 128;
  lopt.service.max_batch = 32;
  ServiceLoadResult res = RunServiceLoad(wl, lopt);
  EXPECT_TRUE(res.consistent);
  EXPECT_EQ(res.ops_submitted, wl.operations().size());
  EXPECT_EQ(res.ops_applied + res.ops_rejected, res.ops_submitted);
  EXPECT_EQ(res.submit_failures, 0u);
  EXPECT_GT(res.queries, 0u);
  EXPECT_GT(res.batches, 0u);
  EXPECT_GT(res.update_throughput, 0.0);
  EXPECT_GT(res.query_throughput, 0.0);
  EXPECT_LE(res.final_result_size, 8);
  EXPECT_GE(res.mean_staleness_ops, 0.0);
  EXPECT_GE(res.max_staleness_ops, res.mean_staleness_ops);
}

}  // namespace
}  // namespace fdrms
