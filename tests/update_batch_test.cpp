#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/fdrms.h"
#include "data/generators.h"

namespace fdrms {
namespace {

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < ps.size(); ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

FdRmsOptions Options(int k, int r, double eps = 0.05, int M = 256,
                     uint64_t seed = 7) {
  FdRmsOptions opt;
  opt.k = k;
  opt.r = r;
  opt.eps = eps;
  opt.max_utilities = M;
  opt.seed = seed;
  return opt;
}

class UpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ps_ = GenerateIndep(200, 3, 31);
    algo_ = std::make_unique<FdRms>(3, Options(1, 8));
    ASSERT_TRUE(algo_->Initialize(AsTuples(ps_)).ok());
  }

  PointSet ps_ = PointSet(3);
  std::unique_ptr<FdRms> algo_;
};

TEST_F(UpdateTest, BeforeInitializeFails) {
  FdRms fresh(3, Options(1, 8));
  EXPECT_EQ(fresh.Update(0, {0.1, 0.2, 0.3}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(UpdateTest, NotLiveIdFailsWithoutSideEffects) {
  const std::vector<int> before = algo_->Result();
  const int size_before = algo_->size();
  Status s = algo_->Update(/*id=*/4242, {0.1, 0.2, 0.3});
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(algo_->size(), size_before);
  EXPECT_EQ(algo_->Result(), before);
  EXPECT_TRUE(algo_->Validate().ok());
}

TEST_F(UpdateTest, DimensionMismatchRemovesTupleAndReportsIt) {
  const int id = 0;
  ASSERT_TRUE(algo_->topk().tree().Contains(id));
  const int size_before = algo_->size();
  Status s = algo_->Update(id, {0.5, 0.5});  // 2-dim point into a 3-dim set
  ASSERT_EQ(s.code(), StatusCode::kInvalidArgument);
  // The documented contract: the deletion stands and the Status says so.
  EXPECT_NE(s.message().find("removed"), std::string::npos) << s.ToString();
  EXPECT_FALSE(algo_->topk().tree().Contains(id));
  EXPECT_EQ(algo_->size(), size_before - 1);
  EXPECT_TRUE(algo_->Validate().ok());
  // The id is free again: a valid re-insert succeeds.
  EXPECT_TRUE(algo_->Insert(id, {0.5, 0.5, 0.5}).ok());
}

TEST_F(UpdateTest, ValidUpdateMovesTupleInPlace) {
  const int id = 7;
  const int size_before = algo_->size();
  const Point moved = {0.9, 0.8, 0.95};
  ASSERT_TRUE(algo_->Update(id, moved).ok());
  EXPECT_EQ(algo_->size(), size_before);
  EXPECT_TRUE(algo_->topk().tree().Contains(id));
  EXPECT_EQ(algo_->topk().tree().GetPoint(id), moved);
  EXPECT_TRUE(algo_->Validate().ok());
}

TEST_F(UpdateTest, InsertWithWrongDimensionFailsCleanly) {
  // Regression: the cone-tree pre-query must not dot a short point against
  // full-dimension utilities.
  const int size_before = algo_->size();
  Status s = algo_->Insert(5000, {0.1});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(algo_->size(), size_before);
  EXPECT_TRUE(algo_->Validate().ok());
}

TEST_F(UpdateTest, ApplyBatchAppliesEveryOpInOrder) {
  std::vector<FdRms::BatchOp> ops;
  ops.push_back({FdRms::BatchOp::Kind::kInsert, 300, {0.2, 0.4, 0.6}});
  ops.push_back({FdRms::BatchOp::Kind::kUpdate, 300, {0.7, 0.1, 0.3}});
  ops.push_back({FdRms::BatchOp::Kind::kDelete, 0, {}});
  ASSERT_TRUE(algo_->ApplyBatch(ops).ok());
  EXPECT_TRUE(algo_->topk().tree().Contains(300));
  EXPECT_EQ(algo_->topk().tree().GetPoint(300), Point({0.7, 0.1, 0.3}));
  EXPECT_FALSE(algo_->topk().tree().Contains(0));
  EXPECT_TRUE(algo_->Validate().ok());
}

TEST_F(UpdateTest, ApplyBatchStopsAtFirstFailure) {
  const int size_before = algo_->size();
  std::vector<FdRms::BatchOp> ops;
  ops.push_back({FdRms::BatchOp::Kind::kInsert, 301, {0.3, 0.3, 0.3}});
  // Fails: id 1 is already live.
  ops.push_back({FdRms::BatchOp::Kind::kInsert, 1, {0.5, 0.5, 0.5}});
  // Must never run.
  ops.push_back({FdRms::BatchOp::Kind::kInsert, 302, {0.6, 0.6, 0.6}});
  Status s = algo_->ApplyBatch(ops);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(algo_->topk().tree().Contains(301));   // op before the failure
  EXPECT_FALSE(algo_->topk().tree().Contains(302));  // op after the failure
  EXPECT_EQ(algo_->size(), size_before + 1);
  EXPECT_TRUE(algo_->Validate().ok());
}

TEST_F(UpdateTest, ApplyBatchStopsAtFailedDelete) {
  std::vector<FdRms::BatchOp> ops;
  ops.push_back({FdRms::BatchOp::Kind::kDelete, 2, {}});
  ops.push_back({FdRms::BatchOp::Kind::kDelete, 9999, {}});  // not live
  ops.push_back({FdRms::BatchOp::Kind::kInsert, 303, {0.4, 0.4, 0.4}});
  Status s = algo_->ApplyBatch(ops);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_FALSE(algo_->topk().tree().Contains(2));
  EXPECT_FALSE(algo_->topk().tree().Contains(303));
  EXPECT_TRUE(algo_->Validate().ok());
}

TEST_F(UpdateTest, EmptyBatchIsOk) {
  EXPECT_TRUE(algo_->ApplyBatch({}).ok());
}

TEST_F(UpdateTest, ApplyBatchReportsAppliedCountAndResumesFromOffset) {
  std::vector<FdRms::BatchOp> ops;
  ops.push_back({FdRms::BatchOp::Kind::kInsert, 304, {0.2, 0.2, 0.2}});
  ops.push_back({FdRms::BatchOp::Kind::kDelete, 9999, {}});  // not live
  ops.push_back({FdRms::BatchOp::Kind::kInsert, 305, {0.3, 0.3, 0.3}});
  ops.push_back({FdRms::BatchOp::Kind::kDelete, 3, {}});
  size_t applied = 0;
  Status s = algo_->ApplyBatch(ops, &applied);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(applied, 1u);  // index of the failed op
  // Resume past the offender: counts are relative to `begin`.
  ASSERT_TRUE(algo_->ApplyBatch(ops, /*begin=*/2, &applied).ok());
  EXPECT_EQ(applied, 2u);
  EXPECT_TRUE(algo_->topk().tree().Contains(304));
  EXPECT_TRUE(algo_->topk().tree().Contains(305));
  EXPECT_FALSE(algo_->topk().tree().Contains(3));
  EXPECT_TRUE(algo_->Validate().ok());
}

}  // namespace
}  // namespace fdrms
