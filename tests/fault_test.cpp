#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "common/fault_point.h"
#include "common/retry.h"
#include "common/status.h"
#include "control/slo_controller.h"
#include "data/generators.h"
#include "eval/service_driver.h"
#include "eval/workload.h"
#include "obs/registry.h"
#include "serve/fdrms_service.h"
#include "shard/manifest.h"
#include "shard/merged_snapshot.h"
#include "shard/migration.h"
#include "shard/sharded_service.h"

// All suites here are named Fault* on purpose: the `tsan` CMake test preset
// (and the CI ThreadSanitizer job) selects them with
// ^(Serve|Shard|Migration|Obs|Control|Manifest|Fault).

namespace fdrms {
namespace {

using control::SloController;
using control::SloControllerOptions;
using control::SloDecision;
using obs::MetricSnapshot;
using obs::MetricType;
using obs::RegistrySnapshot;

std::vector<std::pair<int, Point>> AsTuples(const PointSet& ps, int count) {
  std::vector<std::pair<int, Point>> out;
  for (int i = 0; i < count; ++i) out.emplace_back(i, ps.Get(i));
  return out;
}

/// Replays `ops` sequentially on a fresh FdRms with the service's per-op
/// semantics: a rejected operation is skipped, the rest keep going.
std::unique_ptr<FdRms> SequentialReplay(
    int dim, const FdRmsOptions& opt,
    const std::vector<std::pair<int, Point>>& initial,
    const std::vector<FdRms::BatchOp>& ops) {
  auto algo = std::make_unique<FdRms>(dim, opt);
  EXPECT_TRUE(algo->Initialize(initial).ok());
  for (const FdRms::BatchOp& op : ops) {
    switch (op.kind) {
      case FdRms::BatchOp::Kind::kInsert:
        (void)algo->Insert(op.id, op.point);
        break;
      case FdRms::BatchOp::Kind::kDelete:
        (void)algo->Delete(op.id);
        break;
      case FdRms::BatchOp::Kind::kUpdate:
        (void)algo->Update(op.id, op.point);
        break;
    }
  }
  return algo;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 10000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

/// A per-test store prefix inside the test temp dir, wiped of any leftover
/// constellation files from a previous run of the same binary.
std::string CleanBase(const std::string& name) {
  const std::string base = ::testing::TempDir() + name;
  const std::string prefix = FileBasename(base);
  std::error_code ec;
  std::filesystem::directory_iterator it(::testing::TempDir(), ec);
  const std::filesystem::directory_iterator end;
  while (!ec && it != end) {
    const std::string f = it->path().filename().string();
    if (f.compare(0, prefix.size(), prefix) == 0) {
      std::error_code rm;
      std::filesystem::remove(it->path(), rm);
    }
    it.increment(ec);
  }
  return base;
}

uint64_t CounterValue(const obs::MetricRegistry& reg, const std::string& name) {
  for (const MetricSnapshot& m : reg.Snapshot().metrics) {
    if (m.name == name && m.type == MetricType::kCounter) {
      return m.counter_value;
    }
  }
  return 0;
}

double GaugeValue(const obs::MetricRegistry& reg, const std::string& name) {
  for (const MetricSnapshot& m : reg.Snapshot().metrics) {
    if (m.name == name && m.type == MetricType::kGauge) return m.gauge_value;
  }
  return 0.0;
}

/// Every suite below arms process-global fault state; start and end clean
/// so a failing test can't poison its neighbors.
class FaultFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("FDRMS_FAULT");
    FaultPoints::Reset();
  }
  void TearDown() override {
    ::unsetenv("FDRMS_FAULT");
    FaultPoints::Reset();
  }
};

// ---------------------------------------------------------------------------
// FaultPoints framework unit tests.
// ---------------------------------------------------------------------------

using FaultPointTest = FaultFixture;

TEST_F(FaultPointTest, UnarmedHitIsNone) {
  FaultAction act = FaultPoints::Hit("nobody", "armed");
  EXPECT_TRUE(act.none());
  EXPECT_FALSE(act.error());
  EXPECT_FALSE(act.die());
  EXPECT_EQ(FaultPoints::injected(), 0u);
}

TEST_F(FaultPointTest, ErrorIsOneShot) {
  FaultSpec err;
  err.kind = FaultKind::kError;
  FaultPoints::Arm("unit.err", err);
  FaultAction first = FaultPoints::Hit("unit", "err");
  EXPECT_TRUE(first.error());
  EXPECT_EQ(first.ToStatus().code(), StatusCode::kInternal);
  // The arming was consumed: later hits proceed.
  EXPECT_TRUE(FaultPoints::Hit("unit", "err").none());
  EXPECT_EQ(FaultPoints::injected(), 1u);
}

TEST_F(FaultPointTest, StickyErrorKeepsFiring) {
  FaultSpec sticky;
  sticky.kind = FaultKind::kStickyError;
  FaultPoints::Arm("unit.sticky", sticky);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(FaultPoints::Hit("unit", "sticky").error()) << i;
  }
  EXPECT_EQ(FaultPoints::injected(), 3u);
}

TEST_F(FaultPointTest, SkipHitsDefersTheAction) {
  FaultSpec err;
  err.kind = FaultKind::kError;
  err.skip_hits = 2;
  FaultPoints::Arm("unit.skip", err);
  EXPECT_TRUE(FaultPoints::Hit("unit", "skip").none());
  EXPECT_TRUE(FaultPoints::Hit("unit", "skip").none());
  EXPECT_TRUE(FaultPoints::Hit("unit", "skip").error());  // 3rd hit fires
  EXPECT_TRUE(FaultPoints::Hit("unit", "skip").none());   // one-shot consumed
}

TEST_F(FaultPointTest, DelayProceedsEveryHit) {
  FaultSpec delay;
  delay.kind = FaultKind::kDelay;
  delay.delay_us = 100;
  FaultPoints::Arm("unit.delay", delay);
  for (int i = 0; i < 2; ++i) {
    FaultAction act = FaultPoints::Hit("unit", "delay");
    EXPECT_EQ(act.kind, FaultKind::kDelay) << i;
    EXPECT_FALSE(act.error());
    EXPECT_FALSE(act.die());
  }
  EXPECT_EQ(FaultPoints::injected(), 2u);
}

TEST_F(FaultPointTest, DieIsOneShotAndReportsDie) {
  FaultSpec die;
  die.kind = FaultKind::kDie;
  FaultPoints::Arm("unit.die", die);
  EXPECT_TRUE(FaultPoints::Hit("unit", "die").die());
  EXPECT_TRUE(FaultPoints::Hit("unit", "die").none());
}

TEST_F(FaultPointTest, ArmReplacesPriorArming) {
  FaultSpec err;
  err.kind = FaultKind::kStickyError;
  FaultPoints::Arm("unit.replace", err);
  FaultSpec delay;
  delay.kind = FaultKind::kDelay;
  delay.delay_us = 1;
  FaultPoints::Arm("unit.replace", delay);
  EXPECT_EQ(FaultPoints::Hit("unit", "replace").kind, FaultKind::kDelay);
}

TEST_F(FaultPointTest, ResetDisarmsEverything) {
  FaultSpec sticky;
  sticky.kind = FaultKind::kStickyError;
  FaultPoints::Arm("unit.reset", sticky);
  EXPECT_TRUE(FaultPoints::Hit("unit", "reset").error());
  FaultPoints::Reset();
  EXPECT_TRUE(FaultPoints::Hit("unit", "reset").none());
  EXPECT_EQ(FaultPoints::injected(), 0u);  // counter restarts with the arm set
}

TEST_F(FaultPointTest, EnvDirectivesParse) {
  ::setenv("FDRMS_FAULT", "env.one=error,env.two=delay:50,env.three=die@1", 1);
  FaultPoints::Reset();  // re-probe the env on the next Hit
  EXPECT_TRUE(FaultPoints::Hit("env", "one").error());
  EXPECT_TRUE(FaultPoints::Hit("env", "one").none());  // one-shot
  EXPECT_EQ(FaultPoints::Hit("env", "two").kind, FaultKind::kDelay);
  EXPECT_EQ(FaultPoints::Hit("env", "two").kind, FaultKind::kDelay);
  EXPECT_TRUE(FaultPoints::Hit("env", "three").none());  // skipped hit
  EXPECT_TRUE(FaultPoints::Hit("env", "three").die());
  EXPECT_TRUE(FaultPoints::Hit("env", "unarmed").none());
}

TEST_F(FaultPointTest, ToStatusNamesTheSite) {
  FaultSpec err;
  err.kind = FaultKind::kError;
  FaultPoints::Arm("unit.named", err);
  FaultAction act = FaultPoints::Hit("unit", "named");
  EXPECT_NE(act.ToStatus().message().find("unit.named"), std::string::npos);
}

// ---------------------------------------------------------------------------
// retry.h unit tests.
// ---------------------------------------------------------------------------

TEST(FaultRetryTest, TransientCodesAreExactlyExhaustedAndUnavailable) {
  EXPECT_TRUE(IsTransient(Status::ResourceExhausted("full")));
  EXPECT_TRUE(IsTransient(Status::Unavailable("dead")));
  EXPECT_FALSE(IsTransient(Status::OK()));
  EXPECT_FALSE(IsTransient(Status::Internal("boom")));
  EXPECT_FALSE(IsTransient(Status::FailedPrecondition("not running")));
}

TEST(FaultRetryTest, RetriesTransientUntilSuccess) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1;
  policy.max_backoff_us = 10;
  uint64_t retries = 0;
  int calls = 0;
  Status st = RetryTransient(policy, &retries, [&] {
    ++calls;
    return calls < 3 ? Status::ResourceExhausted("full") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(retries, 2u);
}

TEST(FaultRetryTest, GivesUpOnceTheBackoffBudgetIsSpent) {
  RetryPolicy policy;
  policy.initial_backoff_us = 10;
  policy.max_backoff_us = 50;
  policy.max_total_backoff_us = 200;
  uint64_t retries = 0;
  int calls = 0;
  Status st = RetryTransient(policy, &retries, [&] {
    ++calls;
    return Status::Unavailable("dead shard");
  });
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  EXPECT_GE(retries, 1u);
  // Bounded: 10+20+40+50+50+... caps the attempt count near the budget.
  EXPECT_LE(retries, 10u);
  EXPECT_EQ(calls, static_cast<int>(retries) + 1);
}

TEST(FaultRetryTest, PermanentErrorReturnsImmediately) {
  RetryPolicy policy;
  uint64_t retries = 0;
  int calls = 0;
  Status st = RetryTransient(policy, &retries, [&] {
    ++calls;
    return Status::Invalid("bad op");
  });
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(retries, 0u);
}

TEST(FaultRetryTest, NullRetryCounterIsAccepted) {
  RetryPolicy policy;
  policy.initial_backoff_us = 1;
  int calls = 0;
  Status st = RetryTransient(policy, nullptr, [&] {
    ++calls;
    return calls < 2 ? Status::Unavailable("x") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
}

// ---------------------------------------------------------------------------
// Writer-loop fault sites on a single FdRmsService.
// ---------------------------------------------------------------------------

using FaultWriterTest = FaultFixture;

TEST_F(FaultWriterTest, InjectedApplyErrorDegradesHealthButStateStaysCorrect) {
  PointSet ps = GenerateIndep(200, 3, 31);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.record_journal = true;
  FdRmsService service(3, sopt);
  const auto initial = AsTuples(ps, 120);
  ASSERT_TRUE(service.Start(initial).ok());

  FaultSpec err;
  err.kind = FaultKind::kError;
  FaultPoints::Arm("writer.apply.pre", err);
  for (int id = 120; id < 160; ++id) {
    ASSERT_TRUE(service.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  EXPECT_EQ(service.health(), FdRmsService::Health::kDegraded);
  EXPECT_GE(service.writer_faults(), 1u);
  ASSERT_TRUE(service.Stop().ok());

  // The error was surfaced, not swallowed into the data path: the final
  // state equals a sequential replay of the consumed journal.
  auto replay = SequentialReplay(3, sopt.algo, initial, service.journal());
  auto snap = service.Query();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->ids, replay->Result());
  EXPECT_EQ(service.algorithm().Result(), replay->Result());
}

TEST_F(FaultWriterTest, InjectedDelayStallsWithoutDegrading) {
  PointSet ps = GenerateIndep(100, 3, 32);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  FdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());

  FaultSpec delay;
  delay.kind = FaultKind::kDelay;
  delay.delay_us = 2000;
  FaultPoints::Arm("writer.drain.post", delay);
  for (int id = 60; id < 70; ++id) {
    ASSERT_TRUE(service.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  EXPECT_EQ(service.health(), FdRmsService::Health::kRunning);
  EXPECT_GE(service.writer_faults(), 1u);
  ASSERT_TRUE(service.Stop().ok());
}

TEST_F(FaultWriterTest, InjectedPersistErrorCountsFailureAndKeepsServing) {
  PointSet ps = GenerateIndep(100, 3, 33);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.persist_every_batches = 1;
  sopt.persist_path = ::testing::TempDir() + "fault_persist_err.snapshot";
  FdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());

  FaultSpec err;
  err.kind = FaultKind::kError;
  FaultPoints::Arm("writer.persist.pre", err);
  for (int id = 60; id < 70; ++id) {
    ASSERT_TRUE(service.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  EXPECT_GE(service.persist_failures(), 1u);
  EXPECT_EQ(service.health(), FdRmsService::Health::kDegraded);

  // The site disarmed itself (one-shot): later saves land.
  for (int id = 70; id < 80; ++id) {
    ASSERT_TRUE(service.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(service.Flush().ok());
  ASSERT_TRUE(service.Stop().ok());
  EXPECT_GE(service.persists(), 1u);
}

TEST_F(FaultWriterTest, DieAtDrainStashesTheWholeBacklogAsDeadLetter) {
  PointSet ps = GenerateIndep(120, 3, 34);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  FdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 80)).ok());
  ASSERT_TRUE(service.Flush().ok());

  FaultSpec die;
  die.kind = FaultKind::kDie;
  FaultPoints::Arm("writer.drain.post", die);
  // The first non-empty drain triggers the death, so later submits may
  // already be refused kUnavailable — only the *acknowledged* prefix is
  // owed back.
  std::vector<int> accepted;
  for (int id = 80; id < 90; ++id) {
    Status st = service.SubmitInsert(id, ps.Get(id));
    if (!st.ok()) {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable);
      break;
    }
    accepted.push_back(id);
  }
  ASSERT_FALSE(accepted.empty());
  ASSERT_TRUE(WaitFor(
      [&] { return service.health() == FdRmsService::Health::kDead; }));

  // Nothing applied: every acknowledged op comes back, in submission order
  // (the stashed dead-letter batch first, then the queue remnants).
  std::vector<FdRms::BatchOp> backlog;
  ASSERT_TRUE(service.DrainDeadBacklog(&backlog).ok());
  ASSERT_EQ(backlog.size(), accepted.size());
  for (size_t i = 0; i < backlog.size(); ++i) {
    EXPECT_EQ(backlog[i].id, accepted[i]);
  }
  auto snap = service.Query();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 0u);  // last published snapshot keeps serving
  ASSERT_TRUE(service.Stop().ok());
}

TEST_F(FaultWriterTest, DieAtApplyFailsFastEverywhere) {
  PointSet ps = GenerateIndep(100, 3, 35);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  FdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 60)).ok());
  ASSERT_TRUE(service.Flush().ok());

  FaultSpec die;
  die.kind = FaultKind::kDie;
  FaultPoints::Arm("writer.apply.pre", die);
  ASSERT_TRUE(service.SubmitInsert(60, ps.Get(60)).ok());
  ASSERT_TRUE(WaitFor(
      [&] { return service.health() == FdRmsService::Health::kDead; }));

  EXPECT_EQ(service.SubmitInsert(61, ps.Get(61)).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(service.Flush().code(), StatusCode::kUnavailable);
  EXPECT_EQ(service.Inspect([](const FdRms&) {}).code(),
            StatusCode::kUnavailable);

  std::vector<FdRms::BatchOp> backlog;
  ASSERT_TRUE(service.DrainDeadBacklog(&backlog).ok());
  ASSERT_EQ(backlog.size(), 1u);
  EXPECT_EQ(backlog[0].id, 60);

  // Reads degrade, they do not fail.
  auto snap = service.Query();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 0u);
  ASSERT_TRUE(service.Stop().ok());
}

TEST_F(FaultWriterTest, DieAtPublishPreservesAppliedStateInTheExitSave) {
  PointSet ps = GenerateIndep(120, 3, 36);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.persist_every_batches = 1000;  // only the death epilogue's force save
  sopt.persist_path = CleanBase("fault_publish_die.snapshot");
  FdRmsService service(3, sopt);
  const auto initial = AsTuples(ps, 80);
  ASSERT_TRUE(service.Start(initial).ok());
  ASSERT_TRUE(service.Flush().ok());

  FaultSpec die;
  die.kind = FaultKind::kDie;
  FaultPoints::Arm("writer.publish.pre", die);
  std::vector<FdRms::BatchOp> submitted;
  for (int id = 80; id < 100; ++id) {
    FdRms::BatchOp op{FdRms::BatchOp::Kind::kInsert, id, ps.Get(id)};
    submitted.push_back(op);
    ASSERT_TRUE(service.Submit(op).ok());
  }
  ASSERT_TRUE(WaitFor(
      [&] { return service.health() == FdRmsService::Health::kDead; }));

  // The killed batch applied but never published: the snapshot is stale...
  auto snap = service.Query();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 0u);
  // ...and it is NOT in the dead letter (no double-apply on revive).
  std::vector<FdRms::BatchOp> backlog;
  ASSERT_TRUE(service.DrainDeadBacklog(&backlog).ok());
  EXPECT_LT(backlog.size(), submitted.size());
  ASSERT_TRUE(service.Stop().ok());

  // Cold restart from the death epilogue's force save + backlog replay
  // reproduces the unfaulted state exactly.
  FdRmsServiceOptions ropt = sopt;
  ropt.resume_path = sopt.persist_path;
  FdRmsService revived(3, ropt);
  ASSERT_TRUE(revived.Start({}).ok());
  EXPECT_TRUE(revived.resumed());
  for (const FdRms::BatchOp& op : backlog) {
    ASSERT_TRUE(revived.Submit(op).ok());
  }
  ASSERT_TRUE(revived.Flush().ok());
  auto replay = SequentialReplay(3, sopt.algo, initial, submitted);
  auto rsnap = revived.Query();
  ASSERT_NE(rsnap, nullptr);
  EXPECT_EQ(rsnap->ids, replay->Result());
  ASSERT_TRUE(revived.Stop().ok());
}

TEST_F(FaultWriterTest, ParkedFlushReturnsInsteadOfHangingWhenWriterDies) {
  PointSet ps = GenerateIndep(80, 3, 37);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.batch_delay_us_for_test = 30000;  // park the flusher against the batch
  FdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 50)).ok());

  FaultSpec die;
  die.kind = FaultKind::kDie;
  FaultPoints::Arm("writer.apply.pre", die);
  ASSERT_TRUE(service.SubmitInsert(50, ps.Get(50)).ok());
  Status flush_status;
  std::thread flusher([&] { flush_status = service.Flush(); });
  flusher.join();  // regression: this used to hang forever
  EXPECT_EQ(flush_status.code(), StatusCode::kUnavailable);
  ASSERT_TRUE(service.Stop().ok());
}

TEST_F(FaultWriterTest, ParkedInspectReturnsInsteadOfHangingWhenWriterDies) {
  PointSet ps = GenerateIndep(80, 3, 38);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.batch_delay_us_for_test = 30000;
  FdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 50)).ok());

  FaultSpec die;
  die.kind = FaultKind::kDie;
  FaultPoints::Arm("writer.apply.pre", die);
  ASSERT_TRUE(service.SubmitInsert(50, ps.Get(50)).ok());
  Status inspect_status;
  std::thread inspector(
      [&] { inspect_status = service.Inspect([](const FdRms&) {}); });
  inspector.join();  // regression: this used to hang forever
  // A request already parked when the writer exits is either served against
  // the final state (the epilogue drains pending inspections first) or
  // refused kUnavailable — never left hanging.
  EXPECT_TRUE(inspect_status.ok() ||
              inspect_status.code() == StatusCode::kUnavailable)
      << inspect_status.ToString();
  ASSERT_TRUE(service.Stop().ok());
}

TEST_F(FaultWriterTest, BlockedSubmitIsWokenUnavailableWhenWriterDies) {
  PointSet ps = GenerateIndep(80, 3, 39);
  FdRmsServiceOptions sopt;
  sopt.algo.r = 6;
  sopt.algo.max_utilities = 64;
  sopt.queue_capacity = 4;
  sopt.max_batch = 1;
  sopt.adaptive_batching = false;
  sopt.overflow = FdRmsServiceOptions::Overflow::kBlock;
  sopt.batch_delay_us_for_test = 50000;  // hold the writer in its first batch
  FdRmsService service(3, sopt);
  ASSERT_TRUE(service.Start(AsTuples(ps, 40)).ok());

  FaultSpec die;
  die.kind = FaultKind::kDie;
  FaultPoints::Arm("writer.apply.pre", die);
  // Op 40 is popped (the writer then sleeps and dies applying it); ops
  // 41..44 fill the 4-slot queue; op 45 parks in the blocking Push until
  // the death epilogue closes the queue.
  for (int id = 40; id < 45; ++id) {
    ASSERT_TRUE(service.SubmitInsert(id, ps.Get(id)).ok());
  }
  Status parked;
  std::thread submitter([&] { parked = service.SubmitInsert(45, ps.Get(45)); });
  submitter.join();  // regression: this used to park forever
  EXPECT_EQ(parked.code(), StatusCode::kUnavailable) << parked.ToString();
  EXPECT_EQ(service.health(), FdRmsService::Health::kDead);
  ASSERT_TRUE(service.Stop().ok());
}

// ---------------------------------------------------------------------------
// Sharded fault domain: degraded merged reads, fail-fast submits, revive
// (in-memory harvest, durable cold restart, warm standby), health tracker,
// control-plane fault sites.
// ---------------------------------------------------------------------------

using FaultShardedTest = FaultFixture;

ShardedServiceOptions TwoShardOptions() {
  ShardedServiceOptions o;
  o.num_shards = 2;
  o.shard.algo.r = 6;
  o.shard.algo.max_utilities = 128;
  o.shard.max_batch = 16;
  o.health_poll_every_ms = 0;  // deterministic: health read off the topology
  o.manifest_commit_every_ms = 0;
  return o;
}

int FindOwnedId(const ShardedFdRmsService& svc, int lo, int hi, int shard) {
  for (int id = lo; id < hi; ++id) {
    if (svc.router().Route(id) == shard) return id;
  }
  ADD_FAILURE() << "no id in [" << lo << "," << hi << ") routes to shard "
                << shard;
  return -1;
}

/// Arms a one-shot writer death and feeds shard `victim` one op so its
/// writer (and only its writer — everything else must be quiescent) dies.
void KillShard(ShardedFdRmsService* svc, int victim, int kill_id,
               const Point& p) {
  FaultSpec die;
  die.kind = FaultKind::kDie;
  FaultPoints::Arm("writer.apply.pre", die);
  ASSERT_EQ(svc->router().Route(kill_id), victim);
  ASSERT_TRUE(svc->SubmitInsert(kill_id, p).ok());
  ASSERT_TRUE(WaitFor([&] {
    return svc->shard(victim).health() == FdRmsService::Health::kDead;
  }));
}

TEST_F(FaultShardedTest, DeadShardDegradesReadsFailsFastAndRevivesByHarvest) {
  PointSet ps = GenerateIndep(500, 3, 77);
  ShardedFdRmsService svc(3, TwoShardOptions());
  const auto initial = AsTuples(ps, 300);
  ASSERT_TRUE(svc.Start(initial).ok());
  ASSERT_TRUE(svc.Flush().ok());
  auto before = svc.Query();
  ASSERT_NE(before, nullptr);
  EXPECT_EQ(before->degraded_shards, 0);

  const int victim = 0;
  const int kill_id = FindOwnedId(svc, 400, 500, victim);
  KillShard(&svc, victim, kill_id, ps.Get(kill_id));
  EXPECT_EQ(svc.num_unhealthy(), 1);
  EXPECT_EQ(svc.unhealthy_shards(), std::vector<int>{victim});

  // Dead-shard submits fail fast kUnavailable; the healthy shard's accept.
  std::vector<std::pair<int, Point>> failed;
  for (int id = 300; id < 380; ++id) {
    Status st = svc.SubmitInsert(id, ps.Get(id));
    if (svc.router().Route(id) == victim) {
      EXPECT_EQ(st.code(), StatusCode::kUnavailable) << id;
      failed.emplace_back(id, ps.Get(id));
    } else {
      EXPECT_TRUE(st.ok()) << st.ToString();
    }
  }
  ASSERT_FALSE(failed.empty());
  // Flush fails fast on the outage instead of hanging — but still drains
  // the healthy shard on the way.
  EXPECT_EQ(svc.Flush().code(), StatusCode::kUnavailable);

  // Degraded merge annotation + staleness oracle: the dead component's
  // version is frozen while the healthy one advanced.
  auto degraded = svc.Query();
  ASSERT_NE(degraded, nullptr);
  EXPECT_EQ(degraded->degraded_shards, 1);
  ASSERT_EQ(degraded->degraded.size(), 2u);
  EXPECT_TRUE(degraded->degraded[victim]);
  EXPECT_FALSE(degraded->degraded[1 - victim]);
  EXPECT_EQ(degraded->versions[victim], before->versions[victim]);
  EXPECT_GT(degraded->versions[1 - victim], before->versions[1 - victim]);
  EXPECT_GE(svc.degraded_reads(), 1u);

  // Revive: no persistence, no standby — the in-memory harvest path.
  ASSERT_TRUE(svc.ReviveShard(victim).ok());
  EXPECT_EQ(svc.num_unhealthy(), 0);
  EXPECT_EQ(svc.writer_restarts(), 1u);
  EXPECT_EQ(svc.shard(victim).health(), FdRmsService::Health::kRunning);
  EXPECT_FALSE(svc.shard(victim).resumed());

  // Client-side retry of the failed submits completes the stream.
  for (const auto& [id, p] : failed) {
    ASSERT_TRUE(svc.SubmitInsert(id, p).ok());
  }
  ASSERT_TRUE(svc.Flush().ok());
  auto after = svc.Query();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->degraded_shards, 0);
  // Version continuity across the revive: strictly monotone per component.
  EXPECT_GT(after->versions[victim], before->versions[victim]);

  // Revive-then-flush equivalence: identical to an unfaulted run that saw
  // the same per-shard operation sequences.
  ShardedFdRmsService ref(3, TwoShardOptions());
  ASSERT_TRUE(ref.Start(initial).ok());
  ASSERT_TRUE(ref.SubmitInsert(kill_id, ps.Get(kill_id)).ok());
  for (int id = 300; id < 380; ++id) {
    ASSERT_TRUE(ref.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(ref.Flush().ok());
  auto ref_snap = ref.Query();
  ASSERT_NE(ref_snap, nullptr);
  EXPECT_EQ(after->ids, ref_snap->ids);
  ASSERT_TRUE(svc.Stop().ok());
  ASSERT_TRUE(ref.Stop().ok());
}

TEST_F(FaultShardedTest, ReviveColdRestartsFromTheDurableSnapshot) {
  PointSet ps = GenerateIndep(400, 3, 78);
  ShardedServiceOptions opt = TwoShardOptions();
  opt.shard.persist_every_batches = 1;
  opt.shard.persist_path = CleanBase("fault_revive_store");
  ShardedFdRmsService svc(3, opt);
  const auto initial = AsTuples(ps, 200);
  ASSERT_TRUE(svc.Start(initial).ok());
  // Durable work on every shard before the kill.
  for (int id = 200; id < 240; ++id) {
    ASSERT_TRUE(svc.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(svc.Flush().ok());

  const int victim = 0;
  const int kill_id = FindOwnedId(svc, 300, 400, victim);
  KillShard(&svc, victim, kill_id, ps.Get(kill_id));

  ASSERT_TRUE(svc.ReviveShard(victim).ok());
  // Cold restart: the successor read the dead incarnation's snapshot back
  // from disk (the death epilogue force-saves the last applied state).
  EXPECT_TRUE(svc.shard(victim).resumed());
  EXPECT_EQ(svc.writer_restarts(), 1u);
  ASSERT_TRUE(svc.Flush().ok());
  auto after = svc.Query();
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->degraded_shards, 0);

  ShardedFdRmsService ref(3, TwoShardOptions());
  ASSERT_TRUE(ref.Start(initial).ok());
  for (int id = 200; id < 240; ++id) {
    ASSERT_TRUE(ref.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(ref.SubmitInsert(kill_id, ps.Get(kill_id)).ok());
  ASSERT_TRUE(ref.Flush().ok());
  auto ref_snap = ref.Query();
  ASSERT_NE(ref_snap, nullptr);
  EXPECT_EQ(after->ids, ref_snap->ids);
  ASSERT_TRUE(svc.Stop().ok());
  ASSERT_TRUE(ref.Stop().ok());
}

TEST_F(FaultShardedTest, WarmStandbyFollowsThePrimaryAndPromotesOnRevive) {
  PointSet ps = GenerateIndep(500, 3, 79);
  ShardedFdRmsService svc(3, TwoShardOptions());
  const auto initial = AsTuples(ps, 300);
  ASSERT_TRUE(svc.Start(initial).ok());
  ASSERT_TRUE(svc.Flush().ok());

  const int victim = 0;
  ASSERT_TRUE(svc.EnableStandby(victim).ok());
  EXPECT_TRUE(svc.has_standby(victim));
  EXPECT_EQ(svc.standby_batches_applied(victim), 0u);

  int victim_ops = 0;
  for (int id = 300; id < 340; ++id) {
    if (svc.router().Route(id) == victim) ++victim_ops;
    ASSERT_TRUE(svc.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(svc.Flush().ok());
  if (victim_ops > 0) {
    // The journal tap fed every primary batch to the follower.
    EXPECT_GE(svc.standby_batches_applied(victim), 1u);
  }

  const int kill_id = FindOwnedId(svc, 400, 500, victim);
  KillShard(&svc, victim, kill_id, ps.Get(kill_id));
  ASSERT_TRUE(svc.ReviveShard(victim).ok());
  EXPECT_FALSE(svc.has_standby(victim));      // follower consumed by promotion
  EXPECT_FALSE(svc.shard(victim).resumed());  // warm, nothing read from disk
  EXPECT_EQ(svc.writer_restarts(), 1u);
  ASSERT_TRUE(svc.Flush().ok());
  auto after = svc.Query();
  ASSERT_NE(after, nullptr);

  ShardedFdRmsService ref(3, TwoShardOptions());
  ASSERT_TRUE(ref.Start(initial).ok());
  for (int id = 300; id < 340; ++id) {
    ASSERT_TRUE(ref.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(ref.SubmitInsert(kill_id, ps.Get(kill_id)).ok());
  ASSERT_TRUE(ref.Flush().ok());
  auto ref_snap = ref.Query();
  ASSERT_NE(ref_snap, nullptr);
  EXPECT_EQ(after->ids, ref_snap->ids);
  ASSERT_TRUE(svc.Stop().ok());
  ASSERT_TRUE(ref.Stop().ok());
}

TEST_F(FaultShardedTest, HealthTrackerCountsDeathsAndRestoresTheGauge) {
  PointSet ps = GenerateIndep(300, 3, 80);
  ShardedServiceOptions opt = TwoShardOptions();
  opt.health_poll_every_ms = 5;
  ShardedFdRmsService svc(3, opt);
  ASSERT_TRUE(svc.Start(AsTuples(ps, 200)).ok());
  ASSERT_TRUE(svc.Flush().ok());
  const obs::MetricRegistry& reg = *svc.registry();
  EXPECT_EQ(CounterValue(reg, "fdrms_shard_deaths_total"), 0u);

  const int victim = 0;
  const int kill_id = FindOwnedId(svc, 200, 300, victim);
  KillShard(&svc, victim, kill_id, ps.Get(kill_id));
  ASSERT_TRUE(WaitFor([&] {
    return CounterValue(reg, "fdrms_shard_deaths_total") >= 1 &&
           GaugeValue(reg, "fdrms_shards_unhealthy") >= 1.0;
  }));

  ASSERT_TRUE(svc.ReviveShard(victim).ok());
  ASSERT_TRUE(WaitFor(
      [&] { return GaugeValue(reg, "fdrms_shards_unhealthy") == 0.0; }));
  // Per-shard health gauge followed the revive too.
  EXPECT_EQ(svc.shard(victim).health(), FdRmsService::Health::kRunning);
  ASSERT_TRUE(svc.Stop().ok());
}

TEST_F(FaultShardedTest, MigrationFaultSitesAbortCleanly) {
  PointSet ps = GenerateIndep(300, 3, 81);
  ShardedFdRmsService svc(3, TwoShardOptions());
  ASSERT_TRUE(svc.Start(AsTuples(ps, 200)).ok());
  ASSERT_TRUE(svc.Flush().ok());
  const uint64_t epoch0 = svc.epoch();

  // Pre-move sites: the injected failure rejects (freeze) or unwinds
  // (drain/replay) the migration; ownership and serving are untouched.
  for (const char* site :
       {"migration.freeze.pre", "migration.drain.pre",
        "migration.replay.pre"}) {
    FaultSpec err;
    err.kind = FaultKind::kError;
    FaultPoints::Arm(site, err);
    Status st = svc.Migrate(MigrationPlan::IdRange(0, 50, 1));
    EXPECT_EQ(st.code(), StatusCode::kInternal) << site;
    EXPECT_EQ(svc.epoch(), epoch0) << site;
    ASSERT_TRUE(svc.SubmitInsert(200, ps.Get(200)).ok()) << site;
    ASSERT_TRUE(svc.SubmitDelete(200).ok()) << site;
    ASSERT_TRUE(svc.Flush().ok()) << site;
  }
  // Every site disarmed itself: the same plan now completes.
  ASSERT_TRUE(svc.Migrate(MigrationPlan::IdRange(0, 50, 1)).ok());
  const uint64_t epoch1 = svc.epoch();
  EXPECT_GT(epoch1, epoch0);

  // Post-replay site: tuples already moved, so the failure is noted and
  // reported but the cutover still publishes the next epoch — aborting
  // would strand the moved range.
  FaultSpec err;
  err.kind = FaultKind::kError;
  FaultPoints::Arm("migration.cutover.pre", err);
  Status st = svc.Migrate(MigrationPlan::IdRange(50, 80, 1));
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_GT(svc.epoch(), epoch1);
  ASSERT_TRUE(svc.Flush().ok());
  auto snap = svc.Query();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->degraded_shards, 0);
  ASSERT_TRUE(svc.Stop().ok());
}

TEST_F(FaultShardedTest, ManifestCommitFaultIsCountedAndTheStoreRecovers) {
  PointSet ps = GenerateIndep(300, 3, 82);
  ShardedServiceOptions opt = TwoShardOptions();
  opt.shard.persist_every_batches = 1;
  opt.shard.persist_path = CleanBase("fault_manifest_store");
  ShardedFdRmsService svc(3, opt);
  ASSERT_TRUE(svc.Start(AsTuples(ps, 200)).ok());
  ASSERT_TRUE(svc.Flush().ok());
  const uint64_t fails0 = svc.manifest_commit_failures();

  // The cutover's commit eats the injected failure (counted, not fatal —
  // the ledger stays dirty so a later commit retries), and the migration
  // itself still completes.
  FaultSpec err;
  err.kind = FaultKind::kError;
  FaultPoints::Arm("manifest.commit.pre", err);
  ASSERT_TRUE(svc.AddShard().ok());
  EXPECT_EQ(svc.num_shards(), 3);
  EXPECT_GE(svc.manifest_commit_failures(), fails0 + 1);

  for (int id = 200; id < 220; ++id) {
    ASSERT_TRUE(svc.SubmitInsert(id, ps.Get(id)).ok());
  }
  ASSERT_TRUE(svc.Flush().ok());
  ASSERT_TRUE(svc.Stop().ok());  // final commit succeeds (site disarmed)

  // The store is self-describing and reflects the post-AddShard topology.
  ShardedServiceOptions ropt = opt;
  ropt.shard.resume_path = opt.shard.persist_path;
  ropt.num_shards = 1;  // ignored: the manifest decides
  ShardedFdRmsService revived(3, ropt);
  ASSERT_TRUE(revived.Start({}).ok());
  EXPECT_TRUE(revived.resumed());
  EXPECT_EQ(revived.num_shards(), 3);
  ASSERT_TRUE(revived.Stop().ok());
}

// ---------------------------------------------------------------------------
// SLO controller fault-domain gate (deterministic, fake actuator).
// ---------------------------------------------------------------------------

class FaultFakeActuator : public control::SloActuator {
 public:
  int num_shards() const override { return shards_; }
  Status AddShard() override {
    ++add_calls_;
    ++shards_;
    return Status::OK();
  }
  Status RemoveShard() override {
    ++remove_calls_;
    --shards_;
    return Status::OK();
  }
  size_t SetBatchBound(size_t bound) override {
    bound_ = bound;
    return bound_;
  }
  size_t batch_bound() const override { return bound_; }
  size_t queue_capacity() const override { return 1024; }
  uint64_t last_topology_change_us() const override { return 0; }
  int num_unhealthy() const override { return unhealthy_; }
  int ReviveDeadShards() override {
    ++revive_calls_;
    const int revived = unhealthy_;
    unhealthy_ = 0;
    return revived;
  }

  int shards_ = 2;
  size_t bound_ = 64;
  int unhealthy_ = 0;
  int add_calls_ = 0;
  int remove_calls_ = 0;
  int revive_calls_ = 0;
};

/// Fabricated registry snapshot where every shard has been busy `util` of
/// the wall since the start (only the series the controller reads).
RegistrySnapshot FaultUniformLoad(double t, int shards, double util) {
  RegistrySnapshot s;
  s.uptime_seconds = t;
  for (int shard = 0; shard < shards; ++shard) {
    MetricSnapshot busy;
    busy.name = "fdrms_writer_busy_seconds";
    busy.type = MetricType::kGauge;
    busy.labels = {{"shard", std::to_string(shard)}};
    busy.gauge_value = util * t;
    s.metrics.push_back(busy);
    MetricSnapshot depth;
    depth.name = "fdrms_queue_depth";
    depth.type = MetricType::kGauge;
    depth.labels = {{"shard", std::to_string(shard)}};
    depth.gauge_value = 0.0;
    s.metrics.push_back(depth);
  }
  return s;
}

SloControllerOptions FaultControlOptions() {
  SloControllerOptions o;
  o.publish_p99_slo_us = 20000.0;
  o.high_utilization = 0.85;
  o.low_utilization = 0.25;
  o.sustain_ticks = 2;
  o.cooldown_us = 1000000;
  o.min_shards = 1;
  o.max_shards = 4;
  return o;
}

uint64_t Us(double seconds) { return static_cast<uint64_t>(seconds * 1e6); }

TEST(FaultControlTest, UnhealthyShardPausesTopologyScaling) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FaultFakeActuator act;
  SloController ctl(reg, &act, FaultControlOptions());
  ctl.Tick(FaultUniformLoad(0.0, 2, 0.0), 0);  // prime the baseline

  // Sustained scale-up pressure, but a shard is dead: topology holds.
  act.unhealthy_ = 1;
  for (int t = 1; t <= 4; ++t) {
    SloDecision d =
        ctl.Tick(FaultUniformLoad(t, 2, 0.95), Us(static_cast<double>(t)));
    EXPECT_EQ(d.unhealthy_shards, 1) << t;
    EXPECT_FALSE(d.scaled_up) << t;
    EXPECT_FALSE(d.scaled_down) << t;
  }
  EXPECT_EQ(act.add_calls_, 0);

  // Recovery: the gate also reset the hysteresis streaks, so the breach
  // must re-sustain from scratch before the controller acts.
  act.unhealthy_ = 0;
  SloDecision first = ctl.Tick(FaultUniformLoad(5.0, 2, 0.95), Us(5.0));
  EXPECT_EQ(first.unhealthy_shards, 0);
  EXPECT_FALSE(first.scaled_up);
  SloDecision second = ctl.Tick(FaultUniformLoad(6.0, 2, 0.95), Us(6.0));
  EXPECT_TRUE(second.scaled_up);
  EXPECT_EQ(act.add_calls_, 1);
}

TEST(FaultControlTest, ReviveOptionHealsTheFleet) {
  auto reg = std::make_shared<obs::MetricRegistry>();
  FaultFakeActuator act;
  SloControllerOptions opt = FaultControlOptions();
  opt.revive_unhealthy = true;
  SloController ctl(reg, &act, opt);
  ctl.Tick(FaultUniformLoad(0.0, 2, 0.0), 0);

  act.unhealthy_ = 2;
  SloDecision d = ctl.Tick(FaultUniformLoad(1.0, 2, 0.5), Us(1.0));
  EXPECT_EQ(d.unhealthy_shards, 2);
  EXPECT_EQ(d.revived, 2);
  EXPECT_EQ(act.revive_calls_, 1);

  SloDecision next = ctl.Tick(FaultUniformLoad(2.0, 2, 0.5), Us(2.0));
  EXPECT_EQ(next.unhealthy_shards, 0);
  EXPECT_EQ(next.revived, 0);
}

// ---------------------------------------------------------------------------
// End-to-end kill-a-shard-writer drill through the sharded load driver.
// ---------------------------------------------------------------------------

using FaultDriverTest = FaultFixture;

TEST_F(FaultDriverTest, FaultDrillKillsDegradesAndRevives) {
  PointSet ps = GenerateIndep(400, 3, 91);
  Workload wl(&ps, 23);
  ShardedLoadOptions lopt;
  lopt.num_readers = 2;
  lopt.num_submitters = 2;
  lopt.service.num_shards = 2;
  lopt.service.shard.algo.r = 6;
  lopt.service.shard.algo.max_utilities = 128;
  lopt.service.shard.max_batch = 16;
  lopt.service.health_poll_every_ms = 5;
  // Pace the stream so the outage window is real wall-clock time the
  // readers observe, not a burst that ends before the kill lands. 400/s
  // over 400 ops is a ~1s stream: the drill arms at 10% (~100ms) and the
  // death must fire with most of the paced stream still ahead of it, even
  // under TSan's scheduler, so dead-shard submits are actually refused.
  lopt.arrival.push_back({1.0, 400.0});
  lopt.retry_submits = true;
  lopt.submit_retry.initial_backoff_us = 50;
  lopt.submit_retry.max_backoff_us = 500;
  lopt.submit_retry.max_total_backoff_us = 1000;
  lopt.fault.enabled = true;
  lopt.fault.kill_at_fraction = 0.1;
  lopt.fault.revive_at_fraction = -1.0;  // outage persists to end of stream

  ShardedLoadResult res = RunShardedLoad(wl, lopt);
  EXPECT_TRUE(res.consistent);
  EXPECT_EQ(res.null_queries, 0u);  // reads never failed during the outage
  EXPECT_GE(res.shards_killed, 1);
  EXPECT_GE(res.writer_restarts, 1u);
  EXPECT_TRUE(res.revive_ok);
  EXPECT_GE(res.shards_revived, 1);
  EXPECT_GT(res.degraded_queries, 0u);
  EXPECT_GE(res.max_degraded_shards, 1);
  EXPECT_GT(res.unavailable_submits, 0u);
  EXPECT_EQ(res.final_num_shards, 2);
  EXPECT_FALSE(res.fault_trace.empty());
}

}  // namespace
}  // namespace fdrms
