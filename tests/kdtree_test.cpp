#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "common/rng.h"
#include "geometry/sampling.h"
#include "index/kdtree.h"

namespace fdrms {
namespace {

/// Brute-force reference over a live id->point map.
std::vector<ScoredId> BruteTopK(const std::unordered_map<int, Point>& live,
                                const Point& u, int k) {
  std::vector<ScoredId> all;
  for (const auto& [id, p] : live) all.push_back({Dot(u, p), id});
  std::sort(all.begin(), all.end(), BetterScore);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

std::vector<ScoredId> BruteRange(const std::unordered_map<int, Point>& live,
                                 const Point& u, double threshold) {
  std::vector<ScoredId> all;
  for (const auto& [id, p] : live) {
    double s = Dot(u, p);
    if (s >= threshold) all.push_back({s, id});
  }
  std::sort(all.begin(), all.end(), BetterScore);
  return all;
}

TEST(KdTreeTest, InsertDuplicateIdFails) {
  KdTree tree(2);
  ASSERT_TRUE(tree.Insert(1, {0.5, 0.5}).ok());
  EXPECT_EQ(tree.Insert(1, {0.1, 0.1}).code(), StatusCode::kAlreadyExists);
}

TEST(KdTreeTest, DeleteMissingIdFails) {
  KdTree tree(2);
  EXPECT_EQ(tree.Delete(9).code(), StatusCode::kNotFound);
}

TEST(KdTreeTest, DimensionMismatchRejected) {
  KdTree tree(3);
  EXPECT_EQ(tree.Insert(0, {1.0, 2.0}).code(), StatusCode::kInvalidArgument);
}

TEST(KdTreeTest, TopKOnTinySet) {
  KdTree tree(2);
  ASSERT_TRUE(tree.Insert(0, {0.2, 1.0}).ok());
  ASSERT_TRUE(tree.Insert(1, {0.6, 0.8}).ok());
  ASSERT_TRUE(tree.Insert(2, {1.0, 0.1}).ok());
  Point u{1.0, 0.0};
  auto top2 = tree.TopK(u, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0].id, 2);
  EXPECT_EQ(top2[1].id, 1);
  // Fewer live points than k.
  auto top9 = tree.TopK(u, 9);
  EXPECT_EQ(top9.size(), 3u);
}

TEST(KdTreeTest, TieBreaksByAscendingId) {
  KdTree tree(2);
  ASSERT_TRUE(tree.Insert(7, {0.5, 0.5}).ok());
  ASSERT_TRUE(tree.Insert(3, {0.5, 0.5}).ok());
  auto top = tree.TopK({1.0, 1.0}, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].id, 3);
  EXPECT_EQ(top[1].id, 7);
}

struct RandomOpsParam {
  int dim;
  int k;
  int num_ops;
  uint64_t seed;
};

class KdTreeRandomOpsTest : public ::testing::TestWithParam<RandomOpsParam> {};

TEST_P(KdTreeRandomOpsTest, MatchesBruteForceUnderChurn) {
  const RandomOpsParam param = GetParam();
  Rng rng(param.seed);
  KdTree tree(param.dim);
  std::unordered_map<int, Point> live;
  int next_id = 0;
  for (int op = 0; op < param.num_ops; ++op) {
    bool do_insert = live.empty() || rng.Uniform() < 0.6;
    if (do_insert) {
      Point p(param.dim);
      for (double& v : p) v = rng.Uniform();
      ASSERT_TRUE(tree.Insert(next_id, p).ok());
      live.emplace(next_id, p);
      ++next_id;
    } else {
      auto it = live.begin();
      std::advance(it, rng.UniformInt(static_cast<int>(live.size())));
      ASSERT_TRUE(tree.Delete(it->first).ok());
      live.erase(it);
    }
    ASSERT_EQ(tree.size(), static_cast<int>(live.size()));
    if (op % 25 == 0 && !live.empty()) {
      Point u = SampleUnitVectorNonneg(param.dim, &rng);
      EXPECT_EQ(tree.TopK(u, param.k), BruteTopK(live, u, param.k));
      auto brute = BruteTopK(live, u, param.k);
      double thr = brute.back().score * 0.9;
      EXPECT_EQ(tree.ScoreRange(u, thr), BruteRange(live, u, thr));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KdTreeRandomOpsTest,
    ::testing::Values(RandomOpsParam{2, 1, 400, 1},
                      RandomOpsParam{3, 3, 400, 2},
                      RandomOpsParam{5, 5, 600, 3},
                      RandomOpsParam{8, 2, 600, 4},
                      RandomOpsParam{4, 4, 1500, 5}),
    [](const auto& info) {
      std::string name = "d";
      name += std::to_string(info.param.dim);
      name += 'k';
      name += std::to_string(info.param.k);
      name += "ops";
      name += std::to_string(info.param.num_ops);
      return name;
    });

TEST(KdTreeTest, ExplicitRebuildPreservesContents) {
  Rng rng(77);
  KdTree tree(3);
  std::unordered_map<int, Point> live;
  for (int i = 0; i < 300; ++i) {
    Point p{rng.Uniform(), rng.Uniform(), rng.Uniform()};
    ASSERT_TRUE(tree.Insert(i, p).ok());
    live.emplace(i, p);
  }
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(tree.Delete(i * 2).ok());
    live.erase(i * 2);
  }
  tree.Rebuild();
  EXPECT_EQ(tree.size(), 150);
  Point u = SampleUnitVectorNonneg(3, &rng);
  EXPECT_EQ(tree.TopK(u, 10), BruteTopK(live, u, 10));
}

TEST(KdTreeTest, ScoreRangeWithZeroThresholdReturnsAll) {
  KdTree tree(2);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(tree.Insert(i, {0.05 * i, 1.0 - 0.05 * i}).ok());
  }
  EXPECT_EQ(tree.ScoreRange({1.0, 1.0}, 0.0).size(), 20u);
}

TEST(KdTreeTest, ForEachVisitsExactlyLiveTuples) {
  KdTree tree(2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(tree.Insert(i, {0.1 * i, 0.1}).ok());
  }
  ASSERT_TRUE(tree.Delete(4).ok());
  std::vector<int> seen;
  tree.ForEach([&](int id, const Point&) { seen.push_back(id); });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 3, 5, 6, 7, 8, 9}));
}

}  // namespace
}  // namespace fdrms
