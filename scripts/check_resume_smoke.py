#!/usr/bin/env python3
"""Resume-smoke gate: assert a killed constellation actually came back.

Usage:
    check_resume_smoke.py RESUME_STDOUT.log RESUME_METRICS.json
        [--min-epoch 1] [--min-shards 1]

Run the kill-and-resume pair first:

    FDRMS_CRASH_POINT=shard.cutover.committed \\
        service_driver --persist store --migrate ...   # dies with exit 137
    service_driver --persist store --resume ... > resume.log

This gate reads the second run's stdout and final registry JSON dump and
checks that

  * the driver resumed from the manifest (the "resume: resumed=yes" line),
    with resume_epoch >= --min-epoch — the first run is killed *after* a
    cutover committed, so a resume that comes back at epoch 0 silently
    lost the migration the manifest recorded,
  * resume_shards >= --min-shards (the restored topology, not the
    constructor default),
  * nothing failed durably during the resumed run:
    fdrms_persist_failures_total (every shard label),
    fdrms_routing_persist_failures_total and
    fdrms_manifest_commit_failures_total are all 0,
  * the resumed run kept committing: fdrms_manifest_commits_total >= 1
    and fdrms_manifest_generation >= 1 (the generation counter survives
    the crash: it reseeds from the manifest, never restarts at 0).
"""

import argparse
import json
import re
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("log_path", help="stdout of the --resume run")
    parser.add_argument("json_path", help="registry JSON dump of that run")
    parser.add_argument("--min-epoch", type=int, default=1,
                        help="resumed routing epoch must be >= this")
    parser.add_argument("--min-shards", type=int, default=1)
    args = parser.parse_args()

    try:
        with open(args.log_path) as f:
            log = f.read()
    except OSError as exc:
        print(f"resume-smoke FAILED: log unreadable: {exc}", file=sys.stderr)
        return 1
    try:
        with open(args.json_path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"resume-smoke FAILED: JSON dump unreadable: {exc}",
              file=sys.stderr)
        return 1

    errors = []

    match = re.search(r"resume: resumed=(\w+) resume_epoch=(\d+) "
                      r"resume_shards=(\d+)", log)
    epoch = shards = 0
    if not match:
        errors.append("no 'resume: resumed=...' line in the driver output "
                      "(was the second run started with --resume?)")
    elif match.group(1) != "yes":
        errors.append("resumed=no: Start() bulk-loaded instead of restoring "
                      "from the manifest")
    else:
        epoch = int(match.group(2))
        shards = int(match.group(3))
        if epoch < args.min_epoch:
            errors.append(f"resume_epoch = {epoch} < {args.min_epoch}: the "
                          "pre-kill cutover's manifest generation was lost")
        if shards < args.min_shards:
            errors.append(f"resume_shards = {shards} < {args.min_shards}")
    if "\nOK\n" not in log and not log.endswith("OK\n"):
        errors.append("driver did not finish with OK (consistency or "
                      "resume check failed)")

    values = {}      # unlabelled series
    persist_failures = {}  # shard label -> value
    for metric in doc.get("metrics", []):
        name, value = metric.get("name"), metric.get("value")
        if value is None:
            continue
        labels = metric.get("labels") or {}
        if name == "fdrms_persist_failures_total":
            persist_failures[labels.get("shard", "?")] = value
        elif not labels:
            values[name] = value

    for shard, failures in sorted(persist_failures.items()):
        if failures > 0:
            errors.append(f"fdrms_persist_failures_total{{shard={shard}}} = "
                          f"{failures:g}")
    if not persist_failures:
        errors.append("no fdrms_persist_failures_total series in the dump "
                      "(persistence was not on?)")
    for name in ("fdrms_routing_persist_failures_total",
                 "fdrms_manifest_commit_failures_total"):
        if values.get(name, 0) > 0:
            errors.append(f"{name} = {values[name]:g}")
    commits = values.get("fdrms_manifest_commits_total", 0)
    if commits < 1:
        errors.append("fdrms_manifest_commits_total = 0 (the resumed run "
                      "never committed a manifest)")
    generation = values.get("fdrms_manifest_generation", 0)
    if generation < 1:
        errors.append(f"fdrms_manifest_generation = {generation:g}")

    print(f"resume-smoke: epoch={epoch} shards={shards} "
          f"commits={commits:g} generation={generation:g} "
          f"persist_failures={sum(persist_failures.values()):g}")
    if errors:
        print("\nresume-smoke FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("resume-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
