#!/usr/bin/env python3
"""SLO-smoke gate: assert the closed control loop actually closed.

Usage:
    check_slo_smoke.py METRICS.json [--slo-p99-us 20000]
        [--min-scale-ups 1] [--min-ticks 5]

Run `service_driver --scenario flash --slo ...` first; this gate reads the
final registry JSON dump and checks that the SLO controller

  * was alive (control_ticks_total >= --min-ticks),
  * reacted to the crowd (control_scale_ups_total >= --min-scale-ups and
    control_decisions_total >= 1),
  * never errored a topology action (control_scale_failures_total == 0),
  * and recovered: the last non-empty control window's publish p99
    (control_publish_p99_window_us) is back under the SLO. The driver stops
    the controller after the submitters drain, so that window covers the
    post-burst baseline tail — real served traffic, not silence.

The scale-up is also expected as a "control.scale_up" trace event; because
the trace ring is bounded and a busy tail can evict an early decision, a
missing event is reported as a warning, not a failure (the counters are
the durable record).
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="registry JSON dump from the run")
    parser.add_argument("--slo-p99-us", type=float, default=20000.0,
                        help="publish-p99 objective the run used (us)")
    parser.add_argument("--min-scale-ups", type=int, default=1)
    parser.add_argument("--min-ticks", type=int, default=5)
    args = parser.parse_args()

    try:
        with open(args.json_path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"slo-smoke FAILED: JSON dump unreadable: {exc}",
              file=sys.stderr)
        return 1

    values = {}
    for metric in doc.get("metrics", []):
        if "value" in metric:
            values[metric["name"]] = metric["value"]

    def value(name):
        return values.get(name, 0.0)

    errors = []
    ticks = value("control_ticks_total")
    if ticks < args.min_ticks:
        errors.append(f"control_ticks_total = {ticks:g} < {args.min_ticks} "
                      "(controller barely ran)")
    scale_ups = value("control_scale_ups_total")
    if scale_ups < args.min_scale_ups:
        errors.append(f"control_scale_ups_total = {scale_ups:g} < "
                      f"{args.min_scale_ups} (crowd did not trigger scale-up)")
    if value("control_decisions_total") < 1:
        errors.append("control_decisions_total = 0 (controller never acted)")
    failures = value("control_scale_failures_total")
    if failures > 0:
        errors.append(f"control_scale_failures_total = {failures:g}")
    if "control_publish_p99_window_us" not in values:
        errors.append("control_publish_p99_window_us missing from dump")
    else:
        p99 = values["control_publish_p99_window_us"]
        if p99 <= 0:
            errors.append("control_publish_p99_window_us = 0 "
                          "(no non-empty window was ever judged)")
        elif p99 > args.slo_p99_us:
            errors.append(f"post-recovery publish p99 {p99:g}us still over "
                          f"the {args.slo_p99_us:g}us SLO")

    trace_names = {event.get("name") for event in doc.get("trace", [])}
    traced = "control.scale_up" in trace_names
    if not traced:
        print("slo-smoke warning: control.scale_up not in the trace ring "
              "(evicted by later events?)", file=sys.stderr)

    print(f"slo-smoke: ticks={ticks:g} scale_ups={scale_ups:g} "
          f"scale_downs={value('control_scale_downs_total'):g} "
          f"batch_adjustments={value('control_batch_adjustments_total'):g} "
          f"window_p99_us={value('control_publish_p99_window_us'):g} "
          f"final_shards={value('fdrms_shards'):g} traced={traced}")
    if errors:
        print("\nslo-smoke FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("slo-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
