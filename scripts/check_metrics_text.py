#!/usr/bin/env python3
"""Metrics-smoke gate: validate a Prometheus text-exposition scrape written
by the observability substrate (`service_driver --prom ...` or the periodic
dumper) and fail if it is malformed or missing the series the SLO
controller depends on.

Usage:
    check_metrics_text.py METRICS.prom [--json METRICS.json]
        [--require-migration] [--min-publish-count 1]

Checks, in order:
  * every line is a comment (# HELP / # TYPE) or a well-formed sample
    (`name{labels} value`), with exactly one HELP and one TYPE per family
    and the TYPE preceding that family's samples;
  * histogram families obey the exposition grammar: `_bucket` samples with
    cumulatively non-decreasing counts per label set, a final `le="+Inf"`
    bucket equal to `_count`, and a `_sum` sample;
  * the writer / queue / batch / publish-latency / merge-cache series the
    controller reads are all present, `fdrms_publish_latency_us_count` is
    at least --min-publish-count, and `fdrms_ops_applied_total` is nonzero;
  * with --require-migration, all four migration-phase histograms
    (freeze / drain / replay / cutover) carry at least one observation and
    `fdrms_migrations_total` is nonzero;
  * with --json, the matching JSON dump parses and contains a "metrics"
    array naming the same publish-latency series.

The gate is deliberately strict about grammar and loose about values: it
proves a real scrape of a live instrumented run round-trips through a
Prometheus-compatible parser, not that the run was fast.
"""

import argparse
import json
import re
import sys
from collections import defaultdict

SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'       # metric name
    r'(?:\{(.*)\})?'                     # optional label body
    r' (-?(?:\d+\.?\d*(?:[eE][+-]?\d+)?|\+Inf|-Inf|NaN))$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')

# Series the SLO controller scrapes; every fdrms_* run must expose these.
REQUIRED_SERIES = [
    "fdrms_ops_submitted_total",
    "fdrms_ops_applied_total",
    "fdrms_batches_total",
    "fdrms_publications_total",
    "fdrms_queue_depth",
    "fdrms_queue_depth_pow2_bucket",
    "fdrms_batch_size_pow2_bucket",
    "fdrms_effective_max_batch",
    "fdrms_publish_latency_us_bucket",
    "fdrms_publish_latency_us_count",
    "fdrms_writer_drain_us_count",
    "fdrms_writer_apply_us_count",
    "fdrms_writer_publish_us_count",
    "fdrms_reads_total",
    "fdrms_merge_cache_hits_total",
    "fdrms_merge_cache_misses_total",
    # Fault-domain gauge: every live shard exports its health bit. (The
    # fault *counters* — deaths, restarts, degraded reads — are zero in a
    # healthy run and so are only asserted by check_fault_smoke.py.)
    "fdrms_shard_healthy",
    # Process-level series every registry snapshot synthesizes.
    "process_uptime_seconds",
    "obs_registry_series",
]

MIGRATION_SERIES = [
    "fdrms_migrations_total",
    "fdrms_migration_freeze_us_count",
    "fdrms_migration_drain_us_count",
    "fdrms_migration_replay_us_count",
    "fdrms_migration_cutover_us_count",
]


def parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)


def parse_exposition(path, errors):
    """Parse the text format into {name: [(labels_dict, value)]}, appending
    grammar violations to `errors`."""
    samples = defaultdict(list)
    helps, types = {}, {}
    families_seen = []  # order of first sample per family
    with open(path) as f:
        lines = f.read().splitlines()
    for lineno, line in enumerate(lines, 1):
        if not line:
            continue
        if line.startswith("#"):
            m = re.match(r'^# (HELP|TYPE) ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$',
                         line)
            if not m:
                errors.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            kind, family, rest = m.groups()
            table = helps if kind == "HELP" else types
            if family in table:
                errors.append(
                    f"line {lineno}: duplicate # {kind} for {family}")
            table[family] = rest
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: malformed sample: {line!r}")
            continue
        name, label_body, value = m.groups()
        labels = {}
        if label_body:
            consumed = 0
            for lm in LABEL_RE.finditer(label_body):
                labels[lm.group(1)] = lm.group(2)
                consumed += len(lm.group(0)) + 1  # +1 for separator comma
            if consumed < len(label_body):
                errors.append(
                    f"line {lineno}: malformed label body: {label_body!r}")
        family = re.sub(r'_(bucket|sum|count)$', '', name)
        if family not in types and name in types:
            family = name
        if family not in families_seen:
            families_seen.append(family)
            if family not in types:
                errors.append(
                    f"line {lineno}: sample for {name} precedes its # TYPE")
        samples[name].append((labels, parse_value(value)))
    for family in types:
        if family not in helps:
            errors.append(f"family {family}: # TYPE without # HELP")
    for family in helps:
        if family not in types:
            errors.append(f"family {family}: # HELP without # TYPE")
    return samples, types


def check_histograms(samples, types, errors):
    for family, kind in types.items():
        if kind != "histogram":
            continue
        buckets = samples.get(family + "_bucket", [])
        by_series = defaultdict(list)
        for labels, value in buckets:
            key = tuple(sorted((k, v) for k, v in labels.items()
                               if k != "le"))
            try:
                le = parse_value(labels.get("le", "+Inf"))
            except ValueError:
                errors.append(f"histogram {family}: unparseable le label "
                              f"{labels.get('le')!r}")
                continue
            by_series[key].append((le, value))
        counts = {tuple(sorted(l.items())): v
                  for l, v in samples.get(family + "_count", [])}
        sums = {tuple(sorted(l.items())): v
                for l, v in samples.get(family + "_sum", [])}
        if not by_series:
            errors.append(f"histogram {family}: no _bucket samples")
        for key, series in by_series.items():
            les = [le for le, _ in series]
            vals = [v for _, v in series]
            if les != sorted(les):
                errors.append(f"histogram {family}{dict(key)}: "
                              "le bounds out of order")
            if any(b > a for a, b in zip(vals[1:], vals)):
                errors.append(f"histogram {family}{dict(key)}: "
                              "bucket counts not cumulative")
            if not les or les[-1] != float("inf"):
                errors.append(f"histogram {family}{dict(key)}: "
                              'missing le="+Inf" bucket')
            elif key in counts and vals[-1] != counts[key]:
                errors.append(f"histogram {family}{dict(key)}: "
                              f"+Inf bucket {vals[-1]} != _count "
                              f"{counts[key]}")
            if key not in counts:
                errors.append(f"histogram {family}{dict(key)}: no _count")
            if key not in sums:
                errors.append(f"histogram {family}{dict(key)}: no _sum")


def series_total(samples, name):
    return sum(v for _, v in samples.get(name, []))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("prom", help="Prometheus text-exposition file")
    parser.add_argument("--json", dest="json_path",
                        help="matching JSON dump to cross-check")
    parser.add_argument("--require-migration", action="store_true",
                        help="require migration-phase series with samples")
    parser.add_argument("--min-publish-count", type=int, default=1)
    args = parser.parse_args()

    errors = []
    samples, types = parse_exposition(args.prom, errors)
    check_histograms(samples, types, errors)

    required = list(REQUIRED_SERIES)
    if args.require_migration:
        required += MIGRATION_SERIES
    for name in required:
        if name not in samples:
            errors.append(f"required series missing: {name}")
    for name in required:
        if name.endswith(("_count", "_total")) and name in samples:
            if series_total(samples, name) <= 0 and (
                    args.require_migration or not name.startswith(
                        "fdrms_migration")):
                errors.append(f"required series has zero mass: {name}")

    publish = series_total(samples, "fdrms_publish_latency_us_count")
    if publish < args.min_publish_count:
        errors.append(f"fdrms_publish_latency_us_count = {publish:g} "
                      f"< --min-publish-count {args.min_publish_count}")

    if args.json_path:
        try:
            with open(args.json_path) as f:
                doc = json.load(f)
            names = {m.get("name") for m in doc.get("metrics", [])}
            if "fdrms_publish_latency_us" not in names:
                errors.append("JSON dump missing fdrms_publish_latency_us")
            if "uptime_seconds" not in doc:
                errors.append("JSON dump missing uptime_seconds")
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"JSON dump unreadable: {exc}")

    print(f"metrics-smoke: {len(samples)} sample names, "
          f"{len(types)} families, publish_count={publish:g}")
    if errors:
        print("\nmetrics-smoke FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("metrics-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
