#!/usr/bin/env python3
"""Fault-smoke gate: assert the kill-a-shard-writer drill actually bit.

Usage:
    check_fault_smoke.py METRICS.json [--min-deaths 1] [--min-restarts 1]
        [--max-p99-us 0]

Run `service_driver --scenario ... --fault-kill-at F` first; the driver
already exits nonzero unless the final merge is consistent and the revive
healed the fleet. This gate reads the final registry JSON dump and checks
the outage left the durable marks a *real* drill must leave:

  * a shard writer actually died mid-run
    (fdrms_shard_deaths_total >= --min-deaths),
  * it was revived into a fresh writer incarnation
    (fdrms_shard_writer_restarts_total >= --min-restarts),
  * readers were served *through* the outage, not around it
    (fdrms_degraded_reads_total > 0 — merged reads that carried a dead
    shard's frozen snapshot),
  * the fleet ended healed: fdrms_shards_unhealthy == 0 and every
    per-shard fdrms_shard_healthy gauge is back to 1,
  * with --max-p99-us > 0, the whole-run publish p99 stayed under the
    bound (a post-recovery latency sanity check, not an SLO claim).

The kill and revive are also expected as "shard.unhealthy" /
"shard.revive" trace events; the trace ring is bounded and a busy tail
can evict them, so a miss is a warning — the counters above are the
durable record.
"""

import argparse
import json
import sys
from collections import defaultdict


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", help="registry JSON dump from the run")
    parser.add_argument("--min-deaths", type=int, default=1,
                        help="minimum fdrms_shard_deaths_total")
    parser.add_argument("--min-restarts", type=int, default=1,
                        help="minimum fdrms_shard_writer_restarts_total")
    parser.add_argument("--max-p99-us", type=float, default=0.0,
                        help="bound on whole-run publish p99 (0 = skip)")
    args = parser.parse_args()

    try:
        with open(args.json_path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"fault-smoke FAILED: JSON dump unreadable: {exc}",
              file=sys.stderr)
        return 1

    # Sum across label sets: the constellation counters are single series,
    # but per-shard gauges (fdrms_shard_healthy) appear once per shard.
    totals = defaultdict(float)
    series = defaultdict(list)
    publish_p99 = None
    for metric in doc.get("metrics", []):
        name = metric.get("name")
        if "value" in metric:
            totals[name] += metric["value"]
            series[name].append((metric.get("labels", {}), metric["value"]))
        if name == "fdrms_publish_latency_us" and "p99" in metric:
            publish_p99 = metric["p99"]

    errors = []
    deaths = totals["fdrms_shard_deaths_total"]
    if deaths < args.min_deaths:
        errors.append(f"fdrms_shard_deaths_total = {deaths:g} < "
                      f"{args.min_deaths} (no shard writer actually died)")
    restarts = totals["fdrms_shard_writer_restarts_total"]
    if restarts < args.min_restarts:
        errors.append(f"fdrms_shard_writer_restarts_total = {restarts:g} < "
                      f"{args.min_restarts} (dead shard was never revived)")
    degraded = totals["fdrms_degraded_reads_total"]
    if degraded <= 0:
        errors.append("fdrms_degraded_reads_total = 0 (no read was ever "
                      "served through the outage — kill window too short?)")
    unhealthy = totals["fdrms_shards_unhealthy"]
    if unhealthy != 0:
        errors.append(f"fdrms_shards_unhealthy = {unhealthy:g} at exit "
                      "(fleet did not heal)")
    # A revived shard's fresh writer incarnation exports its own series
    # (distinct "gen" label); the dead incarnation's gauge stays 0 forever,
    # which is honest telemetry. Per shard index, *some* incarnation must
    # be healthy at exit.
    healthy = series["fdrms_shard_healthy"]
    if not healthy:
        errors.append("fdrms_shard_healthy series missing from dump")
    best = defaultdict(float)
    for labels, value in healthy:
        shard = labels.get("shard", "?")
        best[shard] = max(best[shard], value)
    for shard in sorted(best):
        if best[shard] != 1:
            errors.append(f"fdrms_shard_healthy{{shard={shard}}} = "
                          f"{best[shard]:g} across all incarnations "
                          "(shard not healthy at exit)")
    if args.max_p99_us > 0:
        if publish_p99 is None:
            errors.append("fdrms_publish_latency_us p99 missing from dump")
        elif publish_p99 > args.max_p99_us:
            errors.append(f"publish p99 {publish_p99:g}us over the "
                          f"--max-p99-us {args.max_p99_us:g}us bound")

    trace_names = {event.get("name") for event in doc.get("trace", [])}
    for name in ("shard.unhealthy", "shard.revive"):
        if name not in trace_names:
            print(f"fault-smoke warning: {name} not in the trace ring "
                  "(evicted by later events?)", file=sys.stderr)

    print(f"fault-smoke: deaths={deaths:g} restarts={restarts:g} "
          f"degraded_reads={degraded:g} unhealthy_at_exit={unhealthy:g} "
          f"healthy_gauges={len(healthy)} "
          f"publish_p99_us={publish_p99 if publish_p99 is not None else -1:g}")
    if errors:
        print("\nfault-smoke FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  - {e}", file=sys.stderr)
        return 1
    print("fault-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
