#!/usr/bin/env python3
"""Perf-smoke gate: compare fresh bench JSON runs against the committed
baseline and fail on a real regression.

Usage:
    check_perf_smoke.py CURRENT_JSON [CURRENT_JSON ...] --baseline BASELINE
        [--max-throughput-drop 0.20] [--max-p99-inflation 2.0]

Two input formats are accepted and may be mixed across runs:
  * the repo's own bench_concurrent schema ({"cases": [{name, metrics}]});
  * google-benchmark --benchmark_format=json ({"benchmarks": [...]}), as
    emitted by bench_micro_substrates; each benchmark's items_per_second
    becomes its metric.

For every case name present in both the current runs and the baseline the
gate checks:
  * update_ops_per_s / items_per_second must not drop more than
    --max-throughput-drop (fraction) below the baseline;
  * publish_p99_us must not inflate more than --max-p99-inflation (factor)
    above the baseline.

The baseline may also carry "ratio_gates": pairs of case names measured in
the *same* run whose throughput ratio must stay above a floor:

    {"ratio_gates": [{"name": "simd-speedup-d8",
                      "numerator": "BM_ScoreMatrixKernel/2048/8",
                      "denominator": "BM_ScoreMatrixKernelForcedScalar/2048/8",
                      "metric": "items_per_second",
                      "min_ratio": 1.5}]}

Ratio gates are self-normalizing — both sides ran on the same machine in
the same process — so they hold absolute-speed noise out of the verdict.
The micro-kernel baseline uses them to pin the SIMD dispatch: if dispatch
silently degrades to the scalar tier, the dispatched/forced-scalar ratio
collapses to ~1.0 and the gate fails loudly.

Each configuration's run is only milliseconds long, so any single run is
at the mercy of scheduler noise on a shared CI runner. Pass *several*
current JSONs (CI runs the bench three times): the gate scores each case
by its best run — max throughput, min p99 — because a regression caused
by the code is reproducible across runs while a noise dip is not. The
thresholds stay deliberately loose on top of that; the gate is meant to
catch the order-of-magnitude breakage a busted queue, batching policy, or
kernel dispatch causes. Refresh the baseline (best-of-3 on a quiet
machine) whenever an intentional perf change shifts the numbers.
"""

import argparse
import json
import sys

THROUGHPUT_KEYS = ("update_ops_per_s", "wall_ops_per_s", "items_per_second")


def load_cases(path):
    with open(path) as f:
        doc = json.load(f)
    if "benchmarks" in doc:  # google-benchmark --benchmark_format=json
        cases = {}
        for bench in doc["benchmarks"]:
            if bench.get("run_type") == "aggregate":
                continue
            metrics = {}
            if "items_per_second" in bench:
                metrics["items_per_second"] = bench["items_per_second"]
            cases[bench["name"]] = metrics
        return cases
    return {case["name"]: case["metrics"] for case in doc.get("cases", [])}


def load_ratio_gates(path):
    with open(path) as f:
        return json.load(f).get("ratio_gates", [])


def best_of(runs):
    """Merge per-run case metrics into best-case metrics (max throughput,
    min p99) per case name."""
    merged = {}
    for run in runs:
        for name, metrics in run.items():
            slot = merged.setdefault(name, {})
            for key in THROUGHPUT_KEYS:
                tp = metrics.get(key)
                if tp is not None:
                    slot[key] = max(slot.get(key, 0.0), tp)
            p99 = metrics.get("publish_p99_us")
            if p99 is not None:
                prev = slot.get("publish_p99_us")
                slot["publish_p99_us"] = p99 if prev is None else min(prev, p99)
    return merged


def throughput_of(metrics):
    for key in THROUGHPUT_KEYS:
        if metrics.get(key):
            return key, metrics[key]
    return None, 0.0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="+",
                        help="one or more fresh bench JSONs (best run wins)")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--max-throughput-drop", type=float, default=0.20,
                        help="max fractional throughput drop (default 0.20)")
    parser.add_argument("--max-p99-inflation", type=float, default=2.0,
                        help="max publish_p99_us inflation factor (default 2.0)")
    args = parser.parse_args()

    current = best_of([load_cases(p) for p in args.current])
    baseline = load_cases(args.baseline)
    ratio_gates = load_ratio_gates(args.baseline)
    shared = sorted(set(current) & set(baseline))
    if not shared and not ratio_gates:
        print("perf-smoke: no overlapping cases between current and baseline",
              file=sys.stderr)
        return 1

    failures = []
    for name in shared:
        cur, base = current[name], baseline[name]
        base_key, base_tp = throughput_of(base)
        if base_tp > 0:
            cur_tp = cur.get(base_key) or 0.0
            drop = 1.0 - cur_tp / base_tp
            status = "FAIL" if drop > args.max_throughput_drop else "ok"
            print(f"[{status}] {name}: {base_key} {cur_tp:,.0f} vs "
                  f"baseline {base_tp:,.0f} ({-drop:+.1%})")
            if status == "FAIL":
                failures.append(f"{name}: throughput dropped {drop:.1%}")
        cur_p99 = cur.get("publish_p99_us") or 0.0
        base_p99 = base.get("publish_p99_us") or 0.0
        if base_p99 > 0:
            factor = cur_p99 / base_p99
            status = "FAIL" if factor > args.max_p99_inflation else "ok"
            print(f"[{status}] {name}: publish_p99_us {cur_p99:,.0f} vs "
                  f"baseline {base_p99:,.0f} ({factor:.2f}x)")
            if status == "FAIL":
                failures.append(f"{name}: publish_p99_us inflated {factor:.2f}x")

    for gate in ratio_gates:
        name = gate.get("name", f"{gate['numerator']}/{gate['denominator']}")
        metric = gate.get("metric", "items_per_second")
        num = (current.get(gate["numerator"]) or {}).get(metric)
        den = (current.get(gate["denominator"]) or {}).get(metric)
        if num is None or den is None or den <= 0:
            print(f"[FAIL] ratio {name}: missing case(s) "
                  f"{gate['numerator']!r} / {gate['denominator']!r}")
            failures.append(f"ratio {name}: missing cases in current runs")
            continue
        ratio = num / den
        status = "FAIL" if ratio < gate["min_ratio"] else "ok"
        print(f"[{status}] ratio {name}: {ratio:.2f}x "
              f"(floor {gate['min_ratio']:.2f}x)")
        if status == "FAIL":
            failures.append(
                f"ratio {name}: {ratio:.2f}x below floor {gate['min_ratio']:.2f}x")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    checked = len(shared) + len(ratio_gates)
    print(f"\nperf-smoke passed on {checked} check(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
