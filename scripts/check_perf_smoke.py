#!/usr/bin/env python3
"""Perf-smoke gate: compare fresh BENCH_bench_concurrent.json runs against
the committed baseline and fail on a real regression.

Usage:
    check_perf_smoke.py CURRENT_JSON [CURRENT_JSON ...] --baseline BASELINE
        [--max-throughput-drop 0.20] [--max-p99-inflation 2.0]

For every case name present in both the current runs and the baseline the
gate checks:
  * update_ops_per_s must not drop more than --max-throughput-drop
    (fraction) below the baseline;
  * publish_p99_us must not inflate more than --max-p99-inflation (factor)
    above the baseline.

Each configuration's run is only milliseconds long, so any single run is
at the mercy of scheduler noise on a shared CI runner. Pass *several*
current JSONs (CI runs the bench three times): the gate scores each case
by its best run — max throughput, min p99 — because a regression caused
by the code is reproducible across runs while a noise dip is not. The
thresholds stay deliberately loose on top of that; the gate is meant to
catch the order-of-magnitude breakage a busted queue or batching policy
causes. Refresh the baseline (best-of-3 `bench_concurrent --json` on a
quiet machine) whenever an intentional perf change shifts the numbers.
"""

import argparse
import json
import sys


def load_cases(path):
    with open(path) as f:
        doc = json.load(f)
    return {case["name"]: case["metrics"] for case in doc.get("cases", [])}


def best_of(runs):
    """Merge per-run case metrics into best-case metrics (max throughput,
    min p99) per case name."""
    merged = {}
    for run in runs:
        for name, metrics in run.items():
            slot = merged.setdefault(name, {})
            tp = metrics.get("update_ops_per_s")
            if tp is not None:
                slot["update_ops_per_s"] = max(slot.get("update_ops_per_s", 0.0), tp)
            p99 = metrics.get("publish_p99_us")
            if p99 is not None:
                prev = slot.get("publish_p99_us")
                slot["publish_p99_us"] = p99 if prev is None else min(prev, p99)
    return merged


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", nargs="+",
                        help="one or more fresh bench JSONs (best run wins)")
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--max-throughput-drop", type=float, default=0.20,
                        help="max fractional update_ops_per_s drop (default 0.20)")
    parser.add_argument("--max-p99-inflation", type=float, default=2.0,
                        help="max publish_p99_us inflation factor (default 2.0)")
    args = parser.parse_args()

    current = best_of([load_cases(p) for p in args.current])
    baseline = load_cases(args.baseline)
    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("perf-smoke: no overlapping cases between current and baseline",
              file=sys.stderr)
        return 1

    failures = []
    for name in shared:
        cur, base = current[name], baseline[name]
        cur_tp = cur.get("update_ops_per_s") or 0.0
        base_tp = base.get("update_ops_per_s") or 0.0
        if base_tp > 0:
            drop = 1.0 - cur_tp / base_tp
            status = "FAIL" if drop > args.max_throughput_drop else "ok"
            print(f"[{status}] {name}: update_ops_per_s {cur_tp:,.0f} vs "
                  f"baseline {base_tp:,.0f} ({-drop:+.1%})")
            if status == "FAIL":
                failures.append(f"{name}: throughput dropped {drop:.1%}")
        cur_p99 = cur.get("publish_p99_us") or 0.0
        base_p99 = base.get("publish_p99_us") or 0.0
        if base_p99 > 0:
            factor = cur_p99 / base_p99
            status = "FAIL" if factor > args.max_p99_inflation else "ok"
            print(f"[{status}] {name}: publish_p99_us {cur_p99:,.0f} vs "
                  f"baseline {base_p99:,.0f} ({factor:.2f}x)")
            if status == "FAIL":
                failures.append(f"{name}: publish_p99_us inflated {factor:.2f}x")

    if failures:
        print("\nperf-smoke FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"\nperf-smoke passed on {len(shared)} case(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
